"""The HotSpot facade — the paper's "thermal modeling tool".

The paper: *"HotSpot takes a system floorplanning and the power consumption
for each function block as input, and generates accurate temperature
estimation for each block."*  :class:`HotSpotModel` is exactly that
interface: build it from a floorplan (plus package constants), then call
:meth:`block_temperatures` with a block→watts map.

One instance caches the Cholesky factorisation of its network *and* (built
lazily, on the first block-level query) a
:class:`~repro.thermal.query.ThermalQueryEngine` holding the block-restricted
influence vectors of ``G⁻¹`` — so block queries are a small matvec and the
thermal-aware scheduler's per-candidate delta queries are O(1) instead of a
dense backsolve plus dict churn per candidate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ThermalError
from ..floorplan.geometry import Floorplan
from .blockmodel import SINK_NODE, build_block_network
from .package import PackageConfig, default_package
from .query import ThermalQueryEngine
from .steady import SteadyStateSolver
from .transient import TransientResult, TransientSimulator

__all__ = ["HotSpotModel"]


class HotSpotModel:
    """Steady-state + transient thermal queries against one floorplan.

    Parameters
    ----------
    floorplan:
        Validated floorplan; block names are the queryable units.
    package:
        Package constants; defaults to the calibrated embedded package.
    """

    def __init__(
        self, floorplan: Floorplan, package: Optional[PackageConfig] = None
    ):
        self.floorplan = floorplan
        self.package = package or default_package()
        self.network = build_block_network(floorplan, self.package)
        self._solver = SteadyStateSolver(self.network)
        self._block_names = floorplan.block_names()
        self._block_indices = [
            self.network.index(name) for name in self._block_names
        ]
        self._engine: Optional[ThermalQueryEngine] = None
        self._queries = 0

    # ------------------------------------------------------------------
    # prebuilt-state extraction / injection (the serving warm path)
    # ------------------------------------------------------------------
    def prebuilt_state(self) -> Tuple[object, SteadyStateSolver, ThermalQueryEngine]:
        """``(network, solver, engine)`` — the expensive immutable parts.

        Everything a :meth:`from_prebuilt` model needs to answer queries
        without re-building the RC network, re-factorising G, or
        re-deriving the block response matrix.  Forces the engine build
        so a cached bundle is warm by construction.
        """
        return self.network, self._solver, self.query_engine()

    @classmethod
    def from_prebuilt(
        cls,
        floorplan: Floorplan,
        package: PackageConfig,
        network,
        solver: SteadyStateSolver,
        engine: ThermalQueryEngine,
    ) -> "HotSpotModel":
        """A model reusing an extracted ``prebuilt_state``.

        The network/solver/engine are shared structurally but the solver
        and engine are *forked* (fresh query counters), so a request
        served from a warm cache reports its own solve provenance, not
        the accumulated history of every request before it.  The
        floorplan's block names must match the engine's block order —
        a mismatched injection would silently answer for the wrong die.
        """
        if tuple(floorplan.block_names()) != engine.block_names:
            raise ThermalError(
                f"prebuilt engine blocks {list(engine.block_names)} do not "
                f"match floorplan blocks {floorplan.block_names()}"
            )
        model = object.__new__(cls)
        model.floorplan = floorplan
        model.package = package
        model.network = network
        model._solver = solver.fork()
        model._block_names = floorplan.block_names()
        model._block_indices = [
            network.index(name) for name in model._block_names
        ]
        model._engine = engine.fork()
        model._queries = 0
        return model

    def attach_engine(self, engine: ThermalQueryEngine) -> None:
        """Inject a precomputed query engine (block order must match)."""
        if engine.block_names != tuple(self._block_names):
            raise ThermalError(
                f"engine blocks {list(engine.block_names)} do not match "
                f"model blocks {self._block_names}"
            )
        self._engine = engine

    # ------------------------------------------------------------------
    @property
    def block_names(self) -> List[str]:
        """Names of the queryable blocks (PE instances)."""
        return list(self._block_names)

    @property
    def block_order(self) -> Tuple[str, ...]:
        """Block names defining the index space of the array APIs."""
        return tuple(self._block_names)

    @property
    def query_count(self) -> int:
        """Number of steady-state queries answered so far."""
        return self._queries

    @property
    def query_stats(self) -> Dict[str, int]:
        """Profiling counters: queries, actual backsolves, fast-path hits."""
        engine = self._engine
        return {
            "queries": self._queries,
            "solver_solves": self._solver.solve_count,
            "engine_built": int(engine is not None),
            "engine_setup_solves": engine.setup_solves if engine else 0,
            "engine_fast_queries": engine.fast_queries if engine else 0,
        }

    def query_engine(self) -> ThermalQueryEngine:
        """The vectorized query engine over this model's blocks.

        Built on first use (one multi-RHS backsolve per block), then cached
        for the model's lifetime; the network must not be mutated.
        """
        if self._engine is None:
            self._engine = ThermalQueryEngine.from_network(
                self.network, self._block_names, solver=self._solver
            )
        return self._engine

    def _check_blocks(self, power_by_block: Mapping[str, float]) -> None:
        for name in power_by_block:
            if name not in self.floorplan:
                raise ThermalError(
                    f"power given for unknown block {name!r}; "
                    f"known blocks: {self._block_names}"
                )

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------
    def temperatures(self, power_by_block: Mapping[str, float]) -> Dict[str, float]:
        """All node temperatures (°C), including package nodes."""
        self._check_blocks(power_by_block)
        self._queries += 1
        return self._solver.temperatures(power_by_block)

    def _block_values(self, power_by_block: Mapping[str, float]) -> List[float]:
        """Block temperatures in :attr:`block_order`, via the block-index
        solve path.

        This is the *exact reference* query: one backsolve of the full
        network, projected straight onto the block indices — no full node
        dict is materialised.  The result is bit-identical to the seed
        implementation (same solve, same per-block expression, same
        reduction order), which is what lets the scheduler's verified fast
        path fall back to it on near-ties without changing any decision.
        """
        self._check_blocks(power_by_block)
        rise = self._solver.solve_rise(self.network.power_vector(power_by_block))
        ambient = self.network.ambient_c
        self._queries += 1
        return [ambient + rise[index] for index in self._block_indices]

    def block_temperatures(
        self, power_by_block: Mapping[str, float]
    ) -> Dict[str, float]:
        """Block (PE) temperatures only (°C) — the paper's HotSpot output."""
        return dict(zip(self._block_names, self._block_values(power_by_block)))

    def block_temperatures_many(self, powers: np.ndarray) -> np.ndarray:
        """Batched block query: ``(k, n_blocks)`` W → ``(k, n_blocks)`` °C.

        Rows/columns follow :attr:`block_order`.
        """
        engine = self.query_engine()
        matrix = np.asarray(powers, dtype=float)
        result = engine.block_temperatures_many(matrix)
        self._queries += matrix.shape[0]
        return result

    def block_power_vector(
        self, power_by_block: Mapping[str, float]
    ) -> np.ndarray:
        """A :attr:`block_order`-indexed power vector from a block→W map."""
        return self.query_engine().power_vector(power_by_block)

    def peak_temperature(self, power_by_block: Mapping[str, float]) -> float:
        """Hottest block temperature (°C)."""
        return max(self._block_values(power_by_block))

    def average_temperature(self, power_by_block: Mapping[str, float]) -> float:
        """Mean block temperature (°C) — the ``Avg_Temp`` DC term."""
        values = self._block_values(power_by_block)
        return sum(values) / len(values)

    def average_temperature_delta(
        self,
        base_powers: np.ndarray,
        block: Union[int, str],
        delta_w: float,
    ) -> float:
        """``Avg_Temp`` of ``base_powers + Δ·e_block`` by superposition.

        *base_powers* is a :attr:`block_order`-indexed vector; *block* an
        index into it or a block name.  O(n_blocks) for the base term plus
        O(1) for the delta — reuse the base across candidates for the full
        O(1) per-candidate path (see :class:`ScheduledThermalQuery`).
        """
        engine = self.query_engine()
        index = engine.block_index(block) if isinstance(block, str) else block
        self._queries += 1
        base = engine.average_temperature_vector(np.asarray(base_powers, float))
        return engine.average_temperature_delta(base, index, delta_w)

    # ------------------------------------------------------------------
    # transient
    # ------------------------------------------------------------------
    def transient(
        self,
        segments: Sequence[Tuple[float, Mapping[str, float]]],
        dt: float,
        stepper: str = "backward_euler",
        initial: Optional[Mapping[str, float]] = None,
    ) -> TransientResult:
        """Integrate block-power *segments* through the network.

        ``segments`` are ``(duration_s, block→W)`` pairs, e.g. produced by
        :meth:`repro.power.trace.PowerTrace.segments`.
        """
        for _, power_map in segments:
            self._check_blocks(power_map)
        simulator = TransientSimulator(self.network, stepper)
        return simulator.run(segments, dt, initial)

    def transient_peak(
        self,
        segments: Sequence[Tuple[float, Mapping[str, float]]],
        dt: float,
        stepper: str = "backward_euler",
    ) -> float:
        """Peak block temperature over a transient run (°C)."""
        result = self.transient(segments, dt, stepper)
        return result.peak_of(self._block_names)

    def __repr__(self) -> str:
        return (
            f"HotSpotModel(blocks={len(self._block_names)}, "
            f"queries={self.query_count})"
        )
