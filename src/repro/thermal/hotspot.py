"""The HotSpot facade — the paper's "thermal modeling tool".

The paper: *"HotSpot takes a system floorplanning and the power consumption
for each function block as input, and generates accurate temperature
estimation for each block."*  :class:`HotSpotModel` is exactly that
interface: build it from a floorplan (plus package constants), then call
:meth:`block_temperatures` with a block→watts map.

One instance caches the Cholesky factorisation of its network, so the
thermal-aware scheduler can issue thousands of queries per workload at
matrix-backsolve cost.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ThermalError
from ..floorplan.geometry import Floorplan
from .blockmodel import SINK_NODE, build_block_network
from .package import PackageConfig, default_package
from .steady import SteadyStateSolver
from .transient import TransientResult, TransientSimulator

__all__ = ["HotSpotModel"]


class HotSpotModel:
    """Steady-state + transient thermal queries against one floorplan.

    Parameters
    ----------
    floorplan:
        Validated floorplan; block names are the queryable units.
    package:
        Package constants; defaults to the calibrated embedded package.
    """

    def __init__(
        self, floorplan: Floorplan, package: Optional[PackageConfig] = None
    ):
        self.floorplan = floorplan
        self.package = package or default_package()
        self.network = build_block_network(floorplan, self.package)
        self._solver = SteadyStateSolver(self.network)
        self._block_names = floorplan.block_names()

    # ------------------------------------------------------------------
    @property
    def block_names(self) -> List[str]:
        """Names of the queryable blocks (PE instances)."""
        return list(self._block_names)

    @property
    def query_count(self) -> int:
        """Number of steady-state solves performed so far."""
        return self._solver.solve_count

    def _check_blocks(self, power_by_block: Mapping[str, float]) -> None:
        for name in power_by_block:
            if name not in self.floorplan:
                raise ThermalError(
                    f"power given for unknown block {name!r}; "
                    f"known blocks: {self._block_names}"
                )

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------
    def temperatures(self, power_by_block: Mapping[str, float]) -> Dict[str, float]:
        """All node temperatures (°C), including package nodes."""
        self._check_blocks(power_by_block)
        return self._solver.temperatures(power_by_block)

    def block_temperatures(
        self, power_by_block: Mapping[str, float]
    ) -> Dict[str, float]:
        """Block (PE) temperatures only (°C) — the paper's HotSpot output."""
        temps = self.temperatures(power_by_block)
        return {name: temps[name] for name in self._block_names}

    def peak_temperature(self, power_by_block: Mapping[str, float]) -> float:
        """Hottest block temperature (°C)."""
        return max(self.block_temperatures(power_by_block).values())

    def average_temperature(self, power_by_block: Mapping[str, float]) -> float:
        """Mean block temperature (°C) — the ``Avg_Temp`` DC term."""
        temps = self.block_temperatures(power_by_block)
        return sum(temps.values()) / len(temps)

    # ------------------------------------------------------------------
    # transient
    # ------------------------------------------------------------------
    def transient(
        self,
        segments: Sequence[Tuple[float, Mapping[str, float]]],
        dt: float,
        stepper: str = "backward_euler",
        initial: Optional[Mapping[str, float]] = None,
    ) -> TransientResult:
        """Integrate block-power *segments* through the network.

        ``segments`` are ``(duration_s, block→W)`` pairs, e.g. produced by
        :meth:`repro.power.trace.PowerTrace.segments`.
        """
        for _, power_map in segments:
            self._check_blocks(power_map)
        simulator = TransientSimulator(self.network, stepper)
        return simulator.run(segments, dt, initial)

    def transient_peak(
        self,
        segments: Sequence[Tuple[float, Mapping[str, float]]],
        dt: float,
        stepper: str = "backward_euler",
    ) -> float:
        """Peak block temperature over a transient run (°C)."""
        result = self.transient(segments, dt, stepper)
        return result.peak_of(self._block_names)

    def __repr__(self) -> str:
        return (
            f"HotSpotModel(blocks={len(self._block_names)}, "
            f"queries={self.query_count})"
        )
