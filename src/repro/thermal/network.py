"""Generic thermal RC networks.

A :class:`ThermalNetwork` is a graph of thermal nodes connected by
conductances, with optional conductance to ambient and heat capacity per
node.  It assembles the standard compact-model matrices

* ``G`` — symmetric conductance matrix (W/K), diagonally dominant thanks to
  the ambient conductances (which ground the network);
* ``C`` — diagonal capacitance vector (J/K);

so that steady state solves ``G · ΔT = P`` and transients integrate
``C · dΔT/dt = P − G · ΔT``, where ``ΔT`` is temperature rise over ambient.
Both the block-level and the grid-level HotSpot-style models are built on
top of this class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SingularNetworkError, ThermalError

__all__ = ["ThermalNetwork"]


class ThermalNetwork:
    """A lumped thermal RC network referenced to ambient."""

    def __init__(self, ambient_c: float):
        self.ambient_c = float(ambient_c)
        self._nodes: Dict[str, int] = {}
        self._capacitance: List[float] = []
        self._ambient_conductance: List[float] = []
        self._edges: Dict[Tuple[int, int], float] = {}
        self._matrix_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        capacitance: float = 0.0,
        ambient_conductance: float = 0.0,
    ) -> int:
        """Add a node; returns its index.

        ``capacitance`` may be zero for quasi-static nodes (steady-state
        only); transient solvers require every node to have positive
        capacitance.  ``ambient_conductance`` connects the node to the
        ambient reference (e.g. convection).
        """
        if not name:
            raise ThermalError("node name must be non-empty")
        if name in self._nodes:
            raise ThermalError(f"duplicate thermal node {name!r}")
        if capacitance < 0.0:
            raise ThermalError(f"node {name!r}: capacitance must be >= 0")
        if ambient_conductance < 0.0:
            raise ThermalError(f"node {name!r}: ambient conductance must be >= 0")
        index = len(self._nodes)
        self._nodes[name] = index
        self._capacitance.append(float(capacitance))
        self._ambient_conductance.append(float(ambient_conductance))
        self._matrix_cache = None
        return index

    def connect(self, a: str, b: str, conductance: float) -> None:
        """Connect nodes *a* and *b* with *conductance* (W/K).

        Repeated connections between the same pair accumulate (parallel
        paths add conductance).
        """
        if conductance <= 0.0:
            raise ThermalError(
                f"conductance {a!r}-{b!r} must be positive, got {conductance}"
            )
        ia, ib = self.index(a), self.index(b)
        if ia == ib:
            raise ThermalError(f"self-connection on node {a!r}")
        key = (min(ia, ib), max(ia, ib))
        self._edges[key] = self._edges.get(key, 0.0) + float(conductance)
        self._matrix_cache = None

    def add_ambient_path(self, name: str, conductance: float) -> None:
        """Add (accumulate) conductance from node *name* to ambient."""
        if conductance <= 0.0:
            raise ThermalError(f"ambient conductance must be positive")
        self._ambient_conductance[self.index(name)] += float(conductance)
        self._matrix_cache = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def index(self, name: str) -> int:
        """Index of node *name*."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ThermalError(f"unknown thermal node {name!r}")

    def node_names(self) -> List[str]:
        """Node names in index order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:
        return (
            f"ThermalNetwork(nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"ambient={self.ambient_c}C)"
        )

    # ------------------------------------------------------------------
    # matrices
    # ------------------------------------------------------------------
    def conductance_matrix(self) -> np.ndarray:
        """The symmetric ``G`` matrix (W/K), cached until mutation."""
        if self._matrix_cache is not None:
            return self._matrix_cache
        size = len(self._nodes)
        matrix = np.zeros((size, size), dtype=float)
        for (ia, ib), conductance in self._edges.items():
            matrix[ia, ia] += conductance
            matrix[ib, ib] += conductance
            matrix[ia, ib] -= conductance
            matrix[ib, ia] -= conductance
        for index, conductance in enumerate(self._ambient_conductance):
            matrix[index, index] += conductance
        self._matrix_cache = matrix
        return matrix

    def capacitance_vector(self) -> np.ndarray:
        """The diagonal ``C`` vector (J/K)."""
        return np.asarray(self._capacitance, dtype=float)

    def power_vector(self, power_by_node: Mapping[str, float]) -> np.ndarray:
        """Assemble a power vector from a (possibly partial) node->W map.

        Unnamed nodes get zero power; unknown names raise.
        Negative powers are rejected (heat sources only).
        """
        vector = np.zeros(len(self._nodes), dtype=float)
        for name, power in power_by_node.items():
            if power < 0.0:
                raise ThermalError(f"negative power on node {name!r}: {power}")
            vector[self.index(name)] = float(power)
        return vector

    def check_grounded(self) -> None:
        """Verify at least one ambient path exists (else G is singular)."""
        if not any(g > 0.0 for g in self._ambient_conductance):
            raise SingularNetworkError(
                "thermal network has no path to ambient; steady state undefined"
            )
