"""Steady-state solution of thermal networks.

The thermal-aware ASP queries the thermal model once per (ready task ×
candidate PE) pair at every scheduling step, so the steady-state solve is
the hot path of the whole reproduction.  :class:`SteadyStateSolver`
therefore factorises the conductance matrix **once** (Cholesky — ``G`` is
symmetric positive definite once grounded) and reuses the factor for every
power vector.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np
from scipy.linalg import cho_factor, cho_solve, LinAlgError

from ..errors import SingularNetworkError, ThermalError
from .network import ThermalNetwork

__all__ = ["SteadyStateSolver"]


class SteadyStateSolver:
    """Cached-factorisation steady-state solver for one network.

    The network must not be mutated after the solver is built; build a new
    solver if the floorplan (and hence the network) changes.
    """

    def __init__(self, network: ThermalNetwork):
        network.check_grounded()
        self.network = network
        matrix = network.conductance_matrix()
        try:
            self._factor = cho_factor(matrix)
        except LinAlgError as exc:
            raise SingularNetworkError(
                f"conductance matrix is not SPD: {exc}"
            ) from exc
        self.solve_count = 0

    def fork(self) -> "SteadyStateSolver":
        """A solver sharing this factorisation with fresh counters.

        The Cholesky factor is the expensive, immutable part; forking
        skips re-factorising while giving the new consumer (one served
        request, one leased model) its own ``solve_count`` provenance.
        """
        clone = object.__new__(SteadyStateSolver)
        clone.network = self.network
        clone._factor = self._factor
        clone.solve_count = 0
        return clone

    def solve_rise(self, power: np.ndarray) -> np.ndarray:
        """Temperature **rise** over ambient for a raw power vector."""
        if power.shape != (len(self.network),):
            raise ThermalError(
                f"power vector has shape {power.shape}, expected "
                f"({len(self.network)},)"
            )
        self.solve_count += 1
        return cho_solve(self._factor, power)

    def solve_rise_many(self, powers: np.ndarray) -> np.ndarray:
        """Temperature rises for a 2-D power matrix, one backsolve call.

        ``powers`` is ``(n_nodes, k)`` — one power vector per column; the
        result has the same shape.  A multi-RHS ``cho_solve`` amortises the
        factor traversal over all columns, which is what makes batched
        block queries and influence-vector precomputation cheap.
        """
        powers = np.asarray(powers, dtype=float)
        if powers.ndim != 2 or powers.shape[0] != len(self.network):
            raise ThermalError(
                f"power matrix has shape {powers.shape}, expected "
                f"({len(self.network)}, k)"
            )
        self.solve_count += powers.shape[1]
        return cho_solve(self._factor, powers)

    def influence_columns(self, indices: Sequence[int]) -> np.ndarray:
        """Columns of ``G⁻¹`` for the given node *indices*.

        Column *j* of the result is the temperature rise of every node per
        watt injected at ``indices[j]`` — the superposition basis the
        vectorized query engine is built on.  ``(n_nodes, len(indices))``.
        """
        size = len(self.network)
        unit = np.zeros((size, len(indices)), dtype=float)
        for column, index in enumerate(indices):
            if not 0 <= index < size:
                raise ThermalError(
                    f"node index {index} out of range for {size}-node network"
                )
            unit[index, column] = 1.0
        return self.solve_rise_many(unit)

    def temperatures_array(self, power: np.ndarray) -> np.ndarray:
        """Absolute node temperatures (°C) for a raw power vector.

        The index-based sibling of :meth:`temperatures` — no dict churn.
        """
        return self.network.ambient_c + self.solve_rise(power)

    def temperatures(self, power_by_node: Mapping[str, float]) -> Dict[str, float]:
        """Absolute temperatures (°C) for a node->W power map."""
        rise = self.solve_rise(self.network.power_vector(power_by_node))
        ambient = self.network.ambient_c
        return {
            name: ambient + rise[index]
            for index, name in enumerate(self.network.node_names())
        }
