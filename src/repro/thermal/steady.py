"""Steady-state solution of thermal networks.

The thermal-aware ASP queries the thermal model once per (ready task ×
candidate PE) pair at every scheduling step, so the steady-state solve is
the hot path of the whole reproduction.  :class:`SteadyStateSolver`
therefore factorises the conductance matrix **once** (Cholesky — ``G`` is
symmetric positive definite once grounded) and reuses the factor for every
power vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, LinAlgError

from ..errors import IllConditionedUpdateError, SingularNetworkError, ThermalError
from .network import ThermalNetwork

__all__ = ["LowRankUpdate", "SteadyStateSolver"]


@dataclass(frozen=True)
class LowRankUpdate:
    """A Woodbury correction to a factorised conductance matrix.

    Encodes ``G_new⁻¹ = G⁻¹ − X · M · Xᵀ`` where ``X`` holds the base
    solver's influence columns for the touched nodes and ``M`` is the
    symmetric Woodbury gain.  Consumers that only need block-restricted
    responses (the query engine) apply the correction with plain matmuls —
    no further backsolves.

    Attributes
    ----------
    indices:
        Touched node indices, sorted ascending — the columns of ``X``.
    columns:
        ``(n_nodes, k)`` influence columns ``G⁻¹ U`` of the base solver.
    gain:
        ``(k, k)`` symmetric Woodbury gain ``W (I + A W)⁻¹`` with
        ``A = Uᵀ G⁻¹ U``.
    rcond:
        Reciprocal condition number of the capacitance matrix ``I + A W``
        — the well-posedness certificate callers gate fallbacks on.
    """

    indices: Tuple[int, ...]
    columns: np.ndarray
    gain: np.ndarray
    rcond: float

    @property
    def rank(self) -> int:
        """Number of touched nodes (the update's rank bound)."""
        return len(self.indices)


class SteadyStateSolver:
    """Cached-factorisation steady-state solver for one network.

    The network must not be mutated after the solver is built; build a new
    solver if the floorplan (and hence the network) changes.
    """

    def __init__(self, network: ThermalNetwork):
        network.check_grounded()
        self.network = network
        matrix = network.conductance_matrix()
        try:
            self._factor = cho_factor(matrix)
        except LinAlgError as exc:
            raise SingularNetworkError(
                f"conductance matrix is not SPD: {exc}"
            ) from exc
        self.solve_count = 0

    def fork(self) -> "SteadyStateSolver":
        """A solver sharing this factorisation with fresh counters.

        The Cholesky factor is the expensive, immutable part; forking
        skips re-factorising while giving the new consumer (one served
        request, one leased model) its own ``solve_count`` provenance.
        """
        clone = object.__new__(SteadyStateSolver)
        clone.network = self.network
        clone._factor = self._factor
        clone.solve_count = 0
        return clone

    def solve_rise(self, power: np.ndarray) -> np.ndarray:
        """Temperature **rise** over ambient for a raw power vector."""
        if power.shape != (len(self.network),):
            raise ThermalError(
                f"power vector has shape {power.shape}, expected "
                f"({len(self.network)},)"
            )
        self.solve_count += 1
        return cho_solve(self._factor, power)

    def solve_rise_many(self, powers: np.ndarray) -> np.ndarray:
        """Temperature rises for a 2-D power matrix, one backsolve call.

        ``powers`` is ``(n_nodes, k)`` — one power vector per column; the
        result has the same shape.  A multi-RHS ``cho_solve`` amortises the
        factor traversal over all columns, which is what makes batched
        block queries and influence-vector precomputation cheap.
        """
        powers = np.asarray(powers, dtype=float)
        if powers.ndim != 2 or powers.shape[0] != len(self.network):
            raise ThermalError(
                f"power matrix has shape {powers.shape}, expected "
                f"({len(self.network)}, k)"
            )
        self.solve_count += powers.shape[1]
        return cho_solve(self._factor, powers)

    def low_rank_update(
        self,
        delta: Mapping[Tuple[int, int], float],
        rcond_limit: float = 1e-8,
    ) -> LowRankUpdate:
        """Woodbury correction for a sparse conductance perturbation.

        *delta* maps node-index pairs to conductance changes (W/K): an
        ``(i, j)`` entry with ``i != j`` perturbs the edge between the two
        nodes, an ``(i, i)`` entry perturbs node *i*'s ambient conductance.
        The perturbed matrix is ``G_new = G + U W Uᵀ`` with ``U`` the
        selection columns of the touched nodes and ``W`` the ``k × k``
        assembly of the deltas; the returned update encodes
        ``G_new⁻¹ = G⁻¹ − X M Xᵀ`` using ``k`` backsolves against the
        existing factor instead of an ``O(n³)`` refactorisation.

        Raises :class:`~repro.errors.IllConditionedUpdateError` when the
        capacitance matrix ``I + A W`` has a reciprocal condition number
        below *rcond_limit* — the caller should rebuild from scratch.
        """
        if not delta:
            raise ThermalError("empty conductance delta for low-rank update")
        size = len(self.network)
        touched = sorted({index for pair in delta for index in pair})
        for index in touched:
            if not 0 <= index < size:
                raise ThermalError(
                    f"node index {index} out of range for {size}-node network"
                )
        local = {index: slot for slot, index in enumerate(touched)}
        k = len(touched)
        w = np.zeros((k, k), dtype=float)
        for (node_a, node_b), change in delta.items():
            change = float(change)
            ia, ib = local[node_a], local[node_b]
            if ia == ib:
                # ambient-conductance perturbation: diagonal only
                w[ia, ia] += change
            else:
                w[ia, ia] += change
                w[ib, ib] += change
                w[ia, ib] -= change
                w[ib, ia] -= change
        columns = self.influence_columns(touched)  # X = G⁻¹ U, (n, k)
        a = columns[np.asarray(touched, dtype=int), :]  # A = Uᵀ G⁻¹ U
        capacitance = np.eye(k) + a @ w
        cond = np.linalg.cond(capacitance)
        rcond = 1.0 / cond if np.isfinite(cond) and cond > 0.0 else 0.0
        if not np.isfinite(rcond) or rcond < rcond_limit:
            raise IllConditionedUpdateError(rcond, rcond_limit)
        # M = W (I + A W)⁻¹, computed as (I + W A)⁻¹ W to avoid inverting
        # the (possibly singular) delta assembly W itself.
        gain = np.linalg.solve(np.eye(k) + w @ a, w)
        gain = (gain + gain.T) / 2.0  # symmetric by construction; enforce
        return LowRankUpdate(
            indices=tuple(touched), columns=columns, gain=gain, rcond=rcond
        )

    def influence_columns(self, indices: Sequence[int]) -> np.ndarray:
        """Columns of ``G⁻¹`` for the given node *indices*.

        Column *j* of the result is the temperature rise of every node per
        watt injected at ``indices[j]`` — the superposition basis the
        vectorized query engine is built on.  ``(n_nodes, len(indices))``.
        """
        size = len(self.network)
        unit = np.zeros((size, len(indices)), dtype=float)
        for column, index in enumerate(indices):
            if not 0 <= index < size:
                raise ThermalError(
                    f"node index {index} out of range for {size}-node network"
                )
            unit[index, column] = 1.0
        return self.solve_rise_many(unit)

    def temperatures_array(self, power: np.ndarray) -> np.ndarray:
        """Absolute node temperatures (°C) for a raw power vector.

        The index-based sibling of :meth:`temperatures` — no dict churn.
        """
        return self.network.ambient_c + self.solve_rise(power)

    def temperatures(self, power_by_node: Mapping[str, float]) -> Dict[str, float]:
        """Absolute temperatures (°C) for a node->W power map."""
        rise = self.solve_rise(self.network.power_vector(power_by_node))
        ambient = self.network.ambient_c
        return {
            name: ambient + rise[index]
            for index, name in enumerate(self.network.node_names())
        }
