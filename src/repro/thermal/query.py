"""Vectorized thermal query engine — O(1) per-candidate queries.

The thermal-aware ASP evaluates every (ready task × candidate PE) pair at
every scheduling step, and each evaluation needs the steady-state block
temperatures for "the committed powers plus this one candidate".  The
compact model is *linear*: ``T = ambient + G⁻¹ · P``, and power is only
ever injected at block (PE) nodes.  So the whole query surface collapses
to a small precomputed **response matrix**

    ``R[i, j] = dT_block_i / dW_block_j``  (°C per W),

the block-row/block-column restriction of ``G⁻¹``.  After one multi-RHS
backsolve per block at construction time:

* a full block-temperature query is ``R @ p`` — an ``n_blocks²`` matvec
  instead of a dense Cholesky backsolve over the whole network;
* the averaged temperature is ``avg_sensitivity @ p`` — ``n_blocks`` flops;
* a *delta* query — "the base powers plus Δ watts on block b" — is
  ``base + Δ · sensitivity[b]``: **O(1)** per candidate, exact to machine
  precision by superposition.

:class:`ThermalQueryEngine` is model-agnostic: :class:`HotSpotModel` builds
one from its block network, :class:`GridModel` folds its coverage and
cell-averaging matrices into the same ``n_blocks × n_blocks`` response, so
the scheduler fast path works unchanged under either solver.

:class:`ScheduledThermalQuery` is the scheduler-side adapter: it keeps the
per-PE committed-energy base state in index space (no name↔index dict
round-trips in the hot loop) and answers per-candidate average / peak /
block-temperature queries against it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ThermalError

__all__ = ["ThermalQueryEngine", "ScheduledThermalQuery"]


class ThermalQueryEngine:
    """Precomputed linear response of block temperatures to block powers.

    Parameters
    ----------
    block_names:
        Names defining the engine's index space (floorplan order).
    response:
        ``(n, n)`` matrix of temperature-rise sensitivities:
        ``response[i, j]`` is the °C rise of block *i* per W on block *j*.
    ambient_c:
        Ambient temperature added to every absolute-temperature result.
    setup_solves:
        How many steady-state backsolves the precomputation cost (for
        profiling reports).
    """

    def __init__(
        self,
        block_names: Sequence[str],
        response: np.ndarray,
        ambient_c: float,
        setup_solves: int = 0,
    ):
        names = tuple(block_names)
        if not names:
            raise ThermalError("query engine needs at least one block")
        if len(set(names)) != len(names):
            raise ThermalError("duplicate block names in query engine")
        matrix = np.asarray(response, dtype=float)
        if matrix.shape != (len(names), len(names)):
            raise ThermalError(
                f"response matrix has shape {matrix.shape}, expected "
                f"({len(names)}, {len(names)})"
            )
        self.block_names: Tuple[str, ...] = names
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.response = matrix
        #: d(average block temperature)/dW per block — the column means.
        self.avg_sensitivity = matrix.mean(axis=0)
        self.ambient_c = float(ambient_c)
        self.setup_solves = int(setup_solves)
        #: Queries answered without touching a matrix factorisation.
        self.fast_queries = 0

    # ------------------------------------------------------------------
    # construction from the concrete models
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network, block_names: Sequence[str], solver=None):
        """Engine for a block-level network (block names are node names)."""
        from .steady import SteadyStateSolver

        solver = solver if solver is not None else SteadyStateSolver(network)
        indices = [network.index(name) for name in block_names]
        columns = solver.influence_columns(indices)  # (n_nodes, n_blocks)
        response = columns[np.asarray(indices, dtype=int), :]
        return cls(
            block_names, response, network.ambient_c,
            setup_solves=len(indices),
        )

    @classmethod
    def from_low_rank_update(
        cls,
        base: "ThermalQueryEngine",
        update,
        block_indices: Sequence[int],
    ) -> "ThermalQueryEngine":
        """Engine for a perturbed network, by Woodbury correction only.

        *base* is the engine of the unperturbed network, *update* a
        :class:`~repro.thermal.steady.LowRankUpdate` produced by that
        network's solver, and *block_indices* the block nodes' indices in
        the *network's* node order (the same indices ``from_network``
        restricted the influence columns to).  The corrected response is

            ``R_new = R − X_b · M · X_bᵀ``

        with ``X_b`` the block rows of the update's influence columns —
        two small matmuls, no backsolves, no refactorisation.  This is the
        incremental path the DSE evaluator uses for move/resize mutations.
        """
        rows = np.asarray(list(block_indices), dtype=int)
        if rows.shape != (len(base.block_names),):
            raise ThermalError(
                f"got {rows.shape[0] if rows.ndim == 1 else rows.shape} block "
                f"indices, expected {len(base.block_names)}"
            )
        xb = update.columns[rows, :]  # (n_blocks, k)
        response = base.response - xb @ update.gain @ xb.T
        return cls(
            base.block_names,
            response,
            base.ambient_c,
            setup_solves=base.setup_solves + update.rank,
        )

    @classmethod
    def from_linear_map(
        cls,
        network,
        block_names: Sequence[str],
        inject: np.ndarray,
        project: np.ndarray,
        solver=None,
    ):
        """Engine for a model with power-spread and read-out matrices.

        ``inject`` (``n_nodes × n_blocks``) maps block powers onto node
        powers; ``project`` (``n_blocks × n_nodes``) maps node temperature
        rises back to block readings.  The grid model passes its coverage
        matrix and cell-averaging weights; the composition
        ``project · G⁻¹ · inject`` is the effective block response.
        """
        from .steady import SteadyStateSolver

        solver = solver if solver is not None else SteadyStateSolver(network)
        rises = solver.solve_rise_many(np.asarray(inject, dtype=float))
        response = np.asarray(project, dtype=float) @ rises
        return cls(
            block_names, response, network.ambient_c,
            setup_solves=inject.shape[1],
        )

    def fork(self) -> "ThermalQueryEngine":
        """An engine sharing this response matrix with fresh counters.

        The precomputed response (the expensive part — one backsolve per
        block) is immutable and safely shared; the fork only carries its
        own ``fast_queries`` provenance.  This is the injection hook the
        serving layer's warm :class:`~repro.serve.cache.EngineCache`
        uses: one precomputation, per-request counter isolation.
        """
        clone = object.__new__(ThermalQueryEngine)
        clone.block_names = self.block_names
        clone._index = self._index
        clone.response = self.response
        clone.avg_sensitivity = self.avg_sensitivity
        clone.ambient_c = self.ambient_c
        clone.setup_solves = self.setup_solves
        clone.fast_queries = 0
        return clone

    # ------------------------------------------------------------------
    # name <-> index plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.block_names)

    def block_index(self, name: str) -> int:
        """Index of *name* in the engine's block order."""
        try:
            return self._index[name]
        except KeyError:
            raise ThermalError(
                f"power given for unknown block {name!r}; "
                f"known blocks: {list(self.block_names)}"
            )

    def power_vector(self, power_by_block: Mapping[str, float]) -> np.ndarray:
        """Block-power vector from a (possibly partial) block->W map.

        Unknown names and negative powers raise, matching the network's
        power-vector contract.
        """
        vector = np.zeros(len(self.block_names), dtype=float)
        for name, power in power_by_block.items():
            if power < 0.0:
                raise ThermalError(f"negative power on node {name!r}: {power}")
            vector[self.block_index(name)] = float(power)
        return vector

    # ------------------------------------------------------------------
    # vector / batched / delta queries
    # ------------------------------------------------------------------
    def block_temperatures_vector(self, powers: np.ndarray) -> np.ndarray:
        """Absolute block temperatures (°C) for one block-power vector."""
        self.fast_queries += 1
        return self.ambient_c + self.response @ np.asarray(powers, dtype=float)

    def block_temperatures_many(self, powers: np.ndarray) -> np.ndarray:
        """Batched query: ``(k, n_blocks)`` powers → ``(k, n_blocks)`` °C."""
        matrix = np.asarray(powers, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.block_names):
            raise ThermalError(
                f"power matrix has shape {matrix.shape}, expected "
                f"(k, {len(self.block_names)})"
            )
        self.fast_queries += matrix.shape[0]
        return self.ambient_c + matrix @ self.response.T

    def average_temperature_vector(self, powers: np.ndarray) -> float:
        """Mean block temperature (°C) for one block-power vector."""
        self.fast_queries += 1
        return self.ambient_c + float(
            self.avg_sensitivity @ np.asarray(powers, dtype=float)
        )

    def average_temperatures_many(self, powers: np.ndarray) -> np.ndarray:
        """Batched averaged-temperature query: ``(k, n_blocks)`` → ``(k,)``."""
        matrix = np.asarray(powers, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.block_names):
            raise ThermalError(
                f"power matrix has shape {matrix.shape}, expected "
                f"(k, {len(self.block_names)})"
            )
        self.fast_queries += matrix.shape[0]
        return self.ambient_c + matrix @ self.avg_sensitivity

    def average_temperature_delta(
        self, base_average: float, block: int, delta_w: float
    ) -> float:
        """``average(base + Δ·e_b)`` given ``average(base)`` — O(1).

        *base_average* is an absolute averaged temperature previously
        returned by this engine; *block* is an engine block index.
        """
        self.fast_queries += 1
        return base_average + delta_w * self.avg_sensitivity[block]

    def block_temperatures_delta(
        self, base_temperatures: np.ndarray, block: int, delta_w: float
    ) -> np.ndarray:
        """``T(base + Δ·e_b)`` given ``T(base)`` — one axpy, no solve."""
        self.fast_queries += 1
        return base_temperatures + delta_w * self.response[:, block]

    def __repr__(self) -> str:
        return (
            f"ThermalQueryEngine(blocks={len(self.block_names)}, "
            f"fast_queries={self.fast_queries})"
        )


class ScheduledThermalQuery:
    """Delta-query adapter between the list scheduler and an engine.

    Holds the partial schedule's base power picture in PE-index space and
    answers per-candidate queries of the form "the committed energies plus
    this candidate's energy on its PE, averaged over this horizon":

        ``p = (E + ΔE·e_pe) / horizon + idle``

    Because the engine is linear, the dot products with the committed
    energy vector are cached per accumulator version (they change only
    when a task commits), so each candidate query is O(1) for the average
    and O(n_blocks) for the peak — no dict building, no backsolve.

    Falls out of use automatically (the scheduler keeps the slow path)
    when two PEs map onto one thermal block, where the legacy dict
    semantics are not linear.
    """

    def __init__(
        self,
        engine: ThermalQueryEngine,
        accumulator,
        pe_to_block: Optional[Mapping[str, str]] = None,
    ):
        self.engine = engine
        self.accumulator = accumulator
        names = accumulator.pe_names()
        mapping = pe_to_block or {}
        self._pe_index = {name: i for i, name in enumerate(names)}
        blocks = [engine.block_index(mapping.get(name, name)) for name in names]
        if len(set(blocks)) != len(blocks):
            raise ThermalError(
                "multiple PEs map onto one thermal block; the delta-query "
                "fast path needs a one-to-one PE->block mapping"
            )
        block_idx = np.asarray(blocks, dtype=int)
        # per-PE sensitivities, reordered into accumulator (PE) space
        self._sens = engine.avg_sensitivity[block_idx]
        self._resp = engine.response[:, block_idx]  # (n_blocks, n_pes)
        idle = accumulator.idle_vector()
        self._idle_avg = float(self._sens @ idle)
        self._idle_temps = self._resp @ idle
        self._version = -1
        self._base_avg_energy = 0.0
        self._base_temp_energy: Optional[np.ndarray] = None
        #: Candidate queries answered through the fast path.
        self.fast_hits = 0

    def _refresh(self) -> None:
        version = self.accumulator.version
        if version != self._version:
            energy = self.accumulator.energy_vector()
            self._base_avg_energy = float(self._sens @ energy)
            self._base_temp_energy = self._resp @ energy
            self._version = version

    def pe_index(self, pe_name: str) -> int:
        """Index of *pe_name* in the accumulator's PE order."""
        return self._pe_index[pe_name]

    # ------------------------------------------------------------------
    def average_temperature(
        self, pe_name: str, energy: float, horizon: float
    ) -> float:
        """``Avg_Temp`` with *energy* J added on *pe_name* — O(1)."""
        self._refresh()
        self.fast_hits += 1
        index = self._pe_index[pe_name]
        return (
            self.engine.ambient_c
            + (self._base_avg_energy + energy * self._sens[index]) / horizon
            + self._idle_avg
        )

    def block_temperatures(
        self, pe_name: str, energy: float, horizon: float
    ) -> np.ndarray:
        """All block temperatures for the same candidate state (°C)."""
        self._refresh()
        self.fast_hits += 1
        index = self._pe_index[pe_name]
        return (
            self.engine.ambient_c
            + (self._base_temp_energy + energy * self._resp[:, index]) / horizon
            + self._idle_temps
        )

    def peak_temperature(
        self, pe_name: str, energy: float, horizon: float
    ) -> float:
        """Hottest block temperature for the candidate state (°C)."""
        return float(self.block_temperatures(pe_name, energy, horizon).max())

    def __repr__(self) -> str:
        return (
            f"ScheduledThermalQuery(pes={len(self._pe_index)}, "
            f"fast_hits={self.fast_hits})"
        )
