"""Retry policies, budgets, and circuit breaking — the recovery half.

:mod:`repro.resilience.faults` makes things fail on demand; this module
is how the platform absorbs those failures (and the real ones they
model).  One :class:`RetryPolicy` shape is shared by every retry loop
in the library — the batch pool's crash resubmission, the serve
client's 429/5xx/reset absorption, the store-append retry — so backoff
behaviour is a single auditable contract instead of N ad-hoc loops
(lint rule RES001 enforces the "single" part: raw ``time.sleep`` and
unbounded retry loops outside this package are violations).

Determinism: backoff *jitter* is derived from the policy seed and the
retry key via SHA-256, never from ``random`` or the clock (DET001/
DET002-safe) — two runs of the same sweep back off identically, while
distinct keys (e.g. per-process) decorrelate real fleets.  The
:class:`CircuitBreaker` measures cooldowns with monotonic
:func:`repro.obs.now` deltas, durations only.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type, TypeVar

from ..errors import ResilienceError
from ..obs import now

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
    "sleep_for",
]

T = TypeVar("T")


def sleep_for(seconds: float) -> None:
    """The library's one sanctioned blocking sleep.

    Every backoff wait routes through here so tests can monkeypatch a
    single symbol to run chaos suites at full speed, and so RES001 has
    a truthful story: sleeps happen in :mod:`repro.resilience`, nowhere
    else.
    """
    if seconds > 0:
        time.sleep(seconds)


def _unit_interval(seed: int, key: str, attempt: int) -> float:
    """A deterministic value in ``[0, 1)`` from (seed, key, attempt)."""
    digest = hashlib.sha256(
        f"repro.retry:{seed}:{key}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first; ``1`` means "never retry".
    base_delay_s / multiplier / max_delay_s:
        Attempt *n* (1-based) waits ``base * multiplier**(n-1)`` seconds
        before attempt *n+1*, capped at ``max_delay_s``.
    jitter:
        Fraction of each wait that is randomized *downward*: the actual
        wait lands in ``[delay * (1 - jitter), delay]``, so the cap
        still holds and synchronized clients spread out.
    seed:
        Jitter stream seed.  Same (seed, key, attempt) → same jitter,
        which keeps retried sweeps byte-replayable; give each process a
        distinct seed (e.g. its pid) when decorrelation matters more
        than replay.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ResilienceError("delays must be >= 0")
        if self.multiplier < 1:
            raise ResilienceError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_s(self, attempt: int, key: str = "") -> float:
        """The backoff before attempt ``attempt + 1`` (1-based)."""
        if attempt < 1:
            raise ResilienceError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay_s)
        if self.jitter == 0 or capped == 0:
            return capped
        return capped * (1.0 - self.jitter * _unit_interval(self.seed, key, attempt))

    def delays(self, key: str = "") -> Tuple[float, ...]:
        """Every backoff this policy would sleep, in order."""
        return tuple(
            self.delay_s(attempt, key=key)
            for attempt in range(1, self.max_attempts)
        )

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        key: str = "",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = sleep_for,
    ) -> T:
        """Run *fn* under this policy, retrying ``retry_on`` failures.

        The final failure is re-raised unchanged; ``on_retry(attempt,
        exc)`` fires before each backoff so callers can count or log.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay_s(attempt, key=key))
        raise AssertionError("unreachable")  # pragma: no cover

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
            "seed": self.seed,
        }


class RetryBudget:
    """A shared cap on *total* retries across one sweep.

    Per-spec attempt limits bound the worst spec; this bounds the worst
    sweep — a pool melting down (every spec crashing) exhausts the
    budget after ``limit`` resubmissions and the remaining failures
    quarantine immediately instead of each burning a full attempt
    ladder.  Thread-safe.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ResilienceError(f"retry budget must be >= 0, got {limit}")
        self.limit = limit
        self._used = 0
        self._lock = threading.Lock()

    def take(self) -> bool:
        """Consume one retry if any remain; False means budget exhausted."""
        with self._lock:
            if self._used < self.limit:
                self._used += 1
                return True
            return False

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def remaining(self) -> int:
        with self._lock:
            return self.limit - self._used

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {"limit": self.limit, "used": self._used}


class _Circuit:
    """Per-key breaker state (internal)."""

    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probing = False


class CircuitBreaker:
    """Per-key failure circuit: open after ``threshold`` consecutive
    failures, reject until ``cooldown_s`` passes, then let one probe
    through (half-open) and close again only if it succeeds.

    Keys are opaque strings — the daemon keys by spec-hash family so a
    pathological spec stops burning workers while healthy families keep
    flowing.  Time is monotonic :func:`repro.obs.now`; thread-safe.
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 30.0):
        if threshold < 1:
            raise ResilienceError(
                f"threshold must be >= 1, got {threshold}"
            )
        if cooldown_s <= 0:
            raise ResilienceError(
                f"cooldown_s must be positive, got {cooldown_s}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._circuits: Dict[str, _Circuit] = {}

    def allow(self, key: str) -> bool:
        """Whether a request for *key* may proceed right now."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return True
            if circuit.probing:
                return False
            if now() - circuit.opened_at >= self.cooldown_s:
                circuit.probing = True  # half-open: exactly one probe
                return True
            return False

    def record_success(self, key: str) -> None:
        """A request for *key* succeeded; close and forget its circuit."""
        with self._lock:
            self._circuits.pop(key, None)

    def record_failure(self, key: str) -> None:
        """A request for *key* failed; open the circuit at threshold."""
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            circuit.failures += 1
            if circuit.probing:
                # the half-open probe failed: re-open for a fresh cooldown
                circuit.opened_at = now()
                circuit.probing = False
            elif circuit.opened_at is None and circuit.failures >= self.threshold:
                circuit.opened_at = now()

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` for *key*."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return "closed"
            if circuit.probing or now() - circuit.opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def open_keys(self) -> Tuple[str, ...]:
        """Keys whose circuit is currently open or half-open, sorted."""
        with self._lock:
            keys = [
                key
                for key in self._circuits
                if self._circuits[key].opened_at is not None
            ]
        return tuple(sorted(keys))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view for ``/stats``: per-key state and failures."""
        with self._lock:
            items = sorted(self._circuits.items())
            view = {
                key: {
                    "failures": circuit.failures,
                    "state": "closed"
                    if circuit.opened_at is None
                    else ("half-open" if circuit.probing else "open"),
                }
                for key, circuit in items
            }
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "circuits": view,
        }
