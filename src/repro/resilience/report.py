"""The sweep-level resilience ledger: what was retried, what was lost.

A fault-tolerant sweep must not *silently* tolerate faults — every
resubmission, timeout, pool restart, and quarantined spec is recorded
here, and the CI chaos job uploads :meth:`RunReport.as_dict` as its
artifact.  The contract with :func:`repro.flow.run_many` is:

* every retry consumed anywhere in the sweep appears in the report;
* a spec that exhausts its attempts is *quarantined* — its failure is
  recorded with the indices it occupied and the sweep continues — so
  ``report.poisoned()`` plus the returned results always account for
  every input spec (zero silently-lost specs).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RunReport"]


class RunReport:
    """Mutable, thread-safe record of one sweep's resilience events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._resubmitted: List[Dict[str, Any]] = []
        self._quarantined: List[Dict[str, Any]] = []
        self._timed_out: List[str] = []
        self._pool_restarts = 0
        self._store_retries = 0
        self._fault_report: Optional[Dict[str, Any]] = None

    # -- recording (called by the batch loop) --------------------------
    def record_resubmit(self, spec_hash: str, attempt: int, error: str) -> None:
        with self._lock:
            self._resubmitted.append(
                {"spec_hash": spec_hash, "attempt": attempt, "error": error}
            )

    def record_timeout(self, spec_hash: str) -> None:
        with self._lock:
            self._timed_out.append(spec_hash)

    def record_pool_restart(self) -> None:
        with self._lock:
            self._pool_restarts += 1

    def record_store_retry(self) -> None:
        with self._lock:
            self._store_retries += 1

    def record_quarantine(
        self,
        spec_hash: str,
        indices: Tuple[int, ...],
        error: str,
        attempts: int,
    ) -> None:
        with self._lock:
            self._quarantined.append(
                {
                    "spec_hash": spec_hash,
                    "indices": list(indices),
                    "error": error,
                    "attempts": attempts,
                }
            )

    def attach_faults(self, fault_report: Dict[str, Any]) -> None:
        """Merge the injector's report so one artifact tells the whole
        story: what was injected and what the sweep did about it."""
        with self._lock:
            self._fault_report = fault_report

    # -- reading -------------------------------------------------------
    def poisoned(self) -> Tuple[str, ...]:
        """Spec hashes quarantined this sweep, in quarantine order."""
        with self._lock:
            return tuple(entry["spec_hash"] for entry in self._quarantined)

    def lost_indices(self) -> Tuple[int, ...]:
        """Result positions that hold no record (poison slots), sorted."""
        with self._lock:
            indices = [
                index
                for entry in self._quarantined
                for index in entry["indices"]
            ]
        return tuple(sorted(indices))

    @property
    def resubmissions(self) -> int:
        with self._lock:
            return len(self._resubmitted)

    @property
    def timeouts(self) -> int:
        with self._lock:
            return len(self._timed_out)

    @property
    def pool_restarts(self) -> int:
        with self._lock:
            return self._pool_restarts

    @property
    def store_retries(self) -> int:
        with self._lock:
            return self._store_retries

    @property
    def quarantined(self) -> Tuple[Dict[str, Any], ...]:
        with self._lock:
            return tuple(dict(entry) for entry in self._quarantined)

    def ok(self) -> bool:
        """True when nothing was lost (retries are fine; poison is not)."""
        with self._lock:
            return not self._quarantined

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-safe report (the chaos-smoke artifact body)."""
        with self._lock:
            payload: Dict[str, Any] = {
                "ok": not self._quarantined,
                "resubmitted": [dict(e) for e in self._resubmitted],
                "quarantined": [dict(e) for e in self._quarantined],
                "timed_out": list(self._timed_out),
                "pool_restarts": self._pool_restarts,
                "store_retries": self._store_retries,
            }
            if self._fault_report is not None:
                payload["faults"] = self._fault_report
        return payload

    def __repr__(self) -> str:
        return (
            f"RunReport(resubmitted={self.resubmissions}, "
            f"quarantined={len(self.quarantined)}, "
            f"timeouts={self.timeouts}, pool_restarts={self.pool_restarts})"
        )
