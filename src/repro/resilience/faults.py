"""Seeded, deterministic fault injection for chaos tests and CI.

The platform's failure handling (crash resubmission in the batch pool,
torn-ledger repair in the store, retry/circuit-breaking in the serve
stack) is only trustworthy if every failure mode can be reproduced on
demand.  This module provides that: a :class:`FaultPlan` names *which*
failure fires at *which* invocation of a named hook site, and an armed
:class:`FaultInjector` makes the instrumented code paths actually fail
there — deterministically, so a chaos run is as replayable as a clean
one.

Design rules (the whole value of the harness rests on them):

* **Never active unless armed.**  Instrumented call sites go through
  :func:`check_fault`/:func:`fire`, which reduce to a single module
  global read when no plan is armed — the production fast path is one
  ``is None`` check, and fault-free runs stay byte-identical.
* **Deterministic.**  A site fires by *ordinal* — the Nth time the gate
  is passed — never by clock or RNG state.  :meth:`FaultPlan.seeded`
  derives ordinals from a seed via SHA-256 (DET001/DET002-safe: no
  ``random``, no wall clock), so CI chaos jobs replay exactly.
* **Explicit sites.**  Every injectable failure is a named entry in
  :data:`FAULT_SITES`; hooks live at the few places listed there and
  nowhere else, so reading this tuple tells you the platform's entire
  simulated failure surface.

Arming is process-global (the hooks sit deep inside the batch loop and
the store appender, far from any argument plumbing) and scoped with the
:func:`inject` context manager::

    plan = FaultPlan.seeded(seed=11, sites={"batch.worker-crash": 2})
    with inject(plan) as injector:
        results = run_many(specs, workers=2, retry=RetryPolicy())
    report = injector.report()          # what fired, where, when

This module is the one place in the library allowed to call
``time.sleep`` and ``os._exit`` (lint rule RES001 fences everything
else off): the slow-worker fault sleeps, and the worker-crash fault
hard-kills a pool child to exercise ``BrokenProcessPool`` recovery.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import InjectedFaultError, ResilienceError
from ..obs import get_recorder

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "active_injector",
    "arm",
    "disarm",
    "inject",
    "check_fault",
    "fire",
    "worker_fault_action",
    "apply_worker_fault",
]

#: Every site the platform can fail at on demand.  Each name appears at
#: exactly one hook location (module: what the armed fault does there).
FAULT_SITES: Tuple[str, ...] = (
    # flow/batch.py: pool child hard-exits mid-spec (BrokenProcessPool);
    # the serial path raises InjectedFaultError instead.
    "batch.worker-crash",
    # flow/batch.py: pool child sleeps ``delay_s`` before running the
    # spec, exercising the per-spec wait timeout.
    "batch.worker-slow",
    # flow/batch.py: the just-written flow-cache pickle is truncated to
    # garbage, exercising corrupt-cache tolerance (treated as a miss).
    "batch.cache-corrupt",
    # results/store.py: the index line is written torn (no newline,
    # half the bytes) and the append raises — blob published, ledger
    # torn, exactly what a crash between the two steps leaves behind.
    "store.torn-index",
    # results/store.py: the published blob is overwritten with garbage
    # after its index line lands — a readable ledger pointing at a
    # corrupt record, fsck's quarantine case.
    "store.corrupt-blob",
    # serve/server.py: the HTTP handler closes the connection without a
    # response, which clients see as ECONNRESET mid-request.
    "serve.connection-reset",
    # serve/server.py: handle_submit raises after parsing, exercising
    # the 500/"internal" path and the client's 5xx retry.
    "serve.handler-exception",
)

#: Slow-worker stall used when a plan doesn't specify ``delay_s``.
DEFAULT_SLOW_DELAY_S = 2.0

#: Exit code of a crash-injected pool child (distinctive in waitpid logs).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure: *site* fires for the invocations in
    ``[ordinal, ordinal + count)`` of its gate.

    ``delay_s`` only matters for ``batch.worker-slow``; other sites
    ignore it.
    """

    site: str
    ordinal: int = 0
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ResilienceError(
                f"unknown fault site {self.site!r}; "
                f"known sites: {', '.join(FAULT_SITES)}"
            )
        if self.ordinal < 0:
            raise ResilienceError(f"ordinal must be >= 0, got {self.ordinal}")
        if self.count < 1:
            raise ResilienceError(f"count must be >= 1, got {self.count}")
        if self.delay_s < 0:
            raise ResilienceError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, ordinal: int) -> bool:
        """Whether this fault fires at gate invocation *ordinal*."""
        return self.ordinal <= ordinal < self.ordinal + self.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "ordinal": self.ordinal,
            "count": self.count,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        unknown = sorted(set(payload) - {"site", "ordinal", "count", "delay_s"})
        if unknown:
            raise ResilienceError(f"unknown FaultSpec keys {unknown}")
        return cls(
            site=str(payload["site"]),
            ordinal=int(payload.get("ordinal", 0)),
            count=int(payload.get("count", 1)),
            delay_s=float(payload.get("delay_s", 0.0)),
        )


def _derive_ordinals(seed: int, site: str, n: int, window: int) -> Tuple[int, ...]:
    """*n* distinct ordinals in ``[0, window)``, SHA-256-derived.

    Rejection sampling over a counter keeps the derivation pure — same
    ``(seed, site, n, window)`` always yields the same ordinals, with no
    RNG state involved (DET001-safe).
    """
    if n > window:
        raise ResilienceError(
            f"cannot place {n} distinct faults in a window of {window}"
        )
    picked: List[int] = []
    counter = 0
    while len(picked) < n:
        digest = hashlib.sha256(
            f"repro.fault:{seed}:{site}:{counter}".encode("utf-8")
        ).digest()
        value = int.from_bytes(digest[:8], "big") % window
        if value not in picked:
            picked.append(value)
        counter += 1
    return tuple(sorted(picked))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of planned failures plus the seed they came from."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ResilienceError(
                    f"faults must be FaultSpec instances, got {fault!r}"
                )

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Mapping[str, int],
        window: int = 16,
        slow_delay_s: float = DEFAULT_SLOW_DELAY_S,
    ) -> "FaultPlan":
        """Derive a plan from a seed: ``sites`` maps site name → how many
        times it fires, with ordinals spread over ``[0, window)``.

        The same ``(seed, sites, window)`` always builds the same plan,
        so a CI chaos job is fully described by its arguments.
        """
        faults: List[FaultSpec] = []
        for site in sorted(sites):
            n = sites[site]
            if n < 1:
                raise ResilienceError(
                    f"site {site!r} count must be >= 1, got {n}"
                )
            delay = slow_delay_s if site == "batch.worker-slow" else 0.0
            for ordinal in _derive_ordinals(seed, site, n, window):
                faults.append(FaultSpec(site=site, ordinal=ordinal, delay_s=delay))
        return cls(seed=seed, faults=tuple(faults))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(
                FaultSpec.from_dict(item) for item in payload.get("faults", ())
            ),
        )


class FaultInjector:
    """Runtime state of an armed plan: per-site gate counters + a log of
    what actually fired.  Thread-safe — serve handler threads and the
    batch consumer share one injector.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._seen: Dict[str, int] = {}
        self._fired: List[Dict[str, Any]] = []
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for fault in plan.faults:
            self._by_site.setdefault(fault.site, []).append(fault)

    def check(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """Pass the gate at *site*: advance its ordinal and return the
        matching :class:`FaultSpec` if the plan fires here, else None.
        """
        if site not in FAULT_SITES:
            raise ResilienceError(f"unknown fault site {site!r}")
        with self._lock:
            ordinal = self._seen.get(site, 0)
            self._seen[site] = ordinal + 1
            hit = None
            for fault in self._by_site.get(site, ()):
                if fault.matches(ordinal):
                    hit = fault
                    break
            if hit is not None:
                entry: Dict[str, Any] = {"site": site, "ordinal": ordinal}
                entry.update(context)
                self._fired.append(entry)
        if hit is not None:
            rec = get_recorder()
            if rec.enabled:
                rec.counter("resilience.faults.injected", site=site)
        return hit

    def fired(self) -> Tuple[Dict[str, Any], ...]:
        """The injections that actually happened, in firing order."""
        with self._lock:
            return tuple(dict(entry) for entry in self._fired)

    def report(self) -> Dict[str, Any]:
        """The JSON-safe fault report (the CI chaos artifact)."""
        with self._lock:
            seen = {site: self._seen[site] for site in sorted(self._seen)}
            fired = [dict(entry) for entry in self._fired]
        return {
            "plan": self.plan.to_dict(),
            "sites_seen": seen,
            "injected": len(fired),
            "fired": fired,
        }


#: The (single) armed injector, or None.  Hooks read this once — the
#: entire fault-free overhead of an instrumented site is this load.
_ACTIVE: Optional[FaultInjector] = None
_ARM_LOCK = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The currently armed injector, if any."""
    return _ACTIVE


def arm(plan: FaultPlan) -> FaultInjector:
    """Arm *plan* process-wide; returns the injector for reporting."""
    global _ACTIVE
    with _ARM_LOCK:
        if _ACTIVE is not None:
            raise ResilienceError(
                "a fault plan is already armed; disarm() it first "
                "(plans do not nest)"
            )
        _ACTIVE = FaultInjector(plan)
        return _ACTIVE


def disarm() -> None:
    """Disarm whatever plan is armed (idempotent)."""
    global _ACTIVE
    with _ARM_LOCK:
        _ACTIVE = None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Arm *plan* for the duration of the block, disarming on exit."""
    injector = arm(plan)
    try:
        yield injector
    finally:
        disarm()


def check_fault(site: str, **context: Any) -> Optional[FaultSpec]:
    """Hook: the fault (if the armed plan fires here), else None."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.check(site, **context)


def fire(site: str, **context: Any) -> None:
    """Hook: raise :class:`InjectedFaultError` if the plan fires here."""
    injector = _ACTIVE
    if injector is None:
        return
    hit = injector.check(site, **context)
    if hit is not None:
        raise InjectedFaultError(site, hit.ordinal)


def worker_fault_action() -> Optional[str]:
    """Parent-side gate for the two pool-worker sites.

    Returns the action string shipped to the child with its payload
    (``"crash"`` or ``"slow:<seconds>"``), or None.  Deciding in the
    parent keeps the plan out of the pickled pool arguments and makes
    the ordinal sequence the submission order, which is deterministic.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    hit = injector.check("batch.worker-crash")
    if hit is not None:
        return "crash"
    hit = injector.check("batch.worker-slow")
    if hit is not None:
        return f"slow:{hit.delay_s or DEFAULT_SLOW_DELAY_S}"
    return None


def apply_worker_fault(action: Optional[str]) -> None:
    """Child-side execution of a planned worker fault.

    Runs inside the pool process before the spec: ``"crash"`` hard-exits
    (the parent sees ``BrokenProcessPool``), ``"slow:<s>"`` stalls (the
    parent's per-spec wait budget trips).  The serial batch path does
    not come through here — it raises :class:`InjectedFaultError` via
    :func:`fire` instead, because killing the caller's own process is
    not a recoverable failure to inject.
    """
    if not action:
        return
    if action == "crash":
        os._exit(CRASH_EXIT_CODE)
    if action.startswith("slow:"):
        time.sleep(float(action.split(":", 1)[1]))
        return
    raise ResilienceError(f"unknown worker fault action {action!r}")
