""":mod:`repro.resilience` — deterministic faults in, graceful recovery out.

Three pieces (see docs/RESILIENCE.md for the operator view):

* :mod:`~repro.resilience.faults` — a seeded fault-injection harness.
  :class:`FaultPlan` names which failure fires at which invocation of a
  named hook site (worker crash, slow worker, torn index write, corrupt
  blob/cache pickle, connection reset, handler exception); hooks are
  inert unless a plan is armed via :func:`inject`.
* :mod:`~repro.resilience.retry` — the shared :class:`RetryPolicy`
  (capped exponential backoff, deterministic seeded jitter), sweep-wide
  :class:`RetryBudget`, and the per-key :class:`CircuitBreaker` the
  daemon uses.
* :mod:`~repro.resilience.report` — :class:`RunReport`, the sweep
  ledger of resubmissions, timeouts, and quarantined poison specs.

The batch pool (:func:`repro.flow.run_many`), the serve stack, and the
result store adopt these pieces; ``repro results fsck`` repairs what a
crash leaves behind.  Lint rule RES001 keeps ad-hoc retry loops and raw
sleeps from growing back elsewhere.
"""

from .faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    arm,
    check_fault,
    disarm,
    fire,
    inject,
)
from .report import RunReport
from .retry import CircuitBreaker, RetryBudget, RetryPolicy, sleep_for

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "active_injector",
    "arm",
    "disarm",
    "inject",
    "check_fault",
    "fire",
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
    "sleep_for",
    "RunReport",
]
