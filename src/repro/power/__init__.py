"""Power-accounting substrate (S3): accumulators, traces, densities."""

from .model import PowerAccumulator
from .trace import PowerTrace
from .density import density_imbalance, peak_power_density, power_density

__all__ = [
    "PowerAccumulator",
    "PowerTrace",
    "power_density",
    "peak_power_density",
    "density_imbalance",
]
