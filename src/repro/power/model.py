"""Running power accounting for the scheduler.

The power heuristics and the thermal-aware DC term all need the same
quantity while the schedule is being built: for every PE, the *cumulative*
power picture — how much energy its already-placed tasks consume, and what
its average power becomes if the candidate task is added.

:class:`PowerAccumulator` tracks that incrementally.  Average power is
defined over a time *horizon* (the tentative schedule length when the
candidate would finish): ``avg_power(pe) = energy(pe) / horizon``, which is
the physically meaningful steady-state power the thermal model should see —
a PE that executed 100 J over a 500-unit schedule dissipates 0.2 W·unit⁻¹
on average regardless of how its busy intervals are spread.

State is kept in PE-index-space numpy arrays so the vectorized thermal
query path (:mod:`repro.thermal.query`) can read the committed-energy base
vector without any name→index dict round-trips; the name-keyed accessors
remain the public bookkeeping API.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ReproError

__all__ = ["PowerAccumulator"]


class PowerAccumulator:
    """Per-PE cumulative energy and busy-time bookkeeping.

    All methods are O(1) or O(n_pes); the scheduler copies nothing —
    candidate queries are expressed as "what if" parameters instead of
    mutated state.
    """

    def __init__(self, pe_names: Iterable[str], idle_power: Optional[Mapping[str, float]] = None):
        names = list(pe_names)
        if not names:
            raise ReproError("PowerAccumulator needs at least one PE")
        if len(set(names)) != len(names):
            raise ReproError("duplicate PE names")
        self._names: List[str] = names
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        size = len(names)
        self._energy = np.zeros(size, dtype=float)
        self._busy = np.zeros(size, dtype=float)
        self._tasks = np.zeros(size, dtype=int)
        self._idle = np.array(
            [float((idle_power or {}).get(name, 0.0)) for name in names],
            dtype=float,
        )
        for name, idle in zip(names, self._idle):
            if idle < 0.0:
                raise ReproError(f"idle power of {name!r} must be >= 0")
        #: Bumped on every :meth:`record` — lets consumers cache
        #: energy-vector-derived quantities between commits.
        self.version = 0

    # ------------------------------------------------------------------
    def _check(self, pe: str) -> int:
        try:
            return self._index[pe]
        except KeyError:
            raise ReproError(f"unknown PE {pe!r} in power accumulator")

    def record(self, pe: str, power: float, duration: float) -> None:
        """Account one placed task: *power* W for *duration* time units."""
        index = self._check(pe)
        if power < 0.0:
            raise ReproError(f"task power must be >= 0, got {power}")
        if duration <= 0.0:
            raise ReproError(f"task duration must be positive, got {duration}")
        self._energy[index] += power * duration
        self._busy[index] += duration
        self._tasks[index] += 1
        self.version += 1

    # ------------------------------------------------------------------
    def pe_names(self) -> List[str]:
        """Tracked PE names."""
        return list(self._names)

    def pe_index(self, pe: str) -> int:
        """Index of *pe* in the accumulator's (construction) order."""
        return self._check(pe)

    def energy(self, pe: str) -> float:
        """Dynamic energy committed to *pe* so far (J)."""
        return float(self._energy[self._check(pe)])

    def busy_time(self, pe: str) -> float:
        """Total busy time committed to *pe* so far."""
        return float(self._busy[self._check(pe)])

    def task_count(self, pe: str) -> int:
        """Number of tasks placed on *pe* so far."""
        return int(self._tasks[self._check(pe)])

    def energy_vector(self) -> np.ndarray:
        """Committed energies in PE-index order (read-only view, J)."""
        view = self._energy.view()
        view.flags.writeable = False
        return view

    def idle_vector(self) -> np.ndarray:
        """Idle powers in PE-index order (read-only view, W)."""
        view = self._idle.view()
        view.flags.writeable = False
        return view

    @property
    def total_energy(self) -> float:
        """Dynamic energy across all PEs (J)."""
        return float(self._energy.sum())

    # ------------------------------------------------------------------
    def average_power(self, pe: str, horizon: float) -> float:
        """Average dynamic+idle power of *pe* over ``[0, horizon]`` (W)."""
        index = self._check(pe)
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        return float(self._energy[index]) / horizon + float(self._idle[index])

    def average_powers(
        self,
        horizon: float,
        extra: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Average power of every PE over ``[0, horizon]``, plus *extra* energy.

        *extra* maps PE names to additional energy (J) — this is how the
        thermal-aware DC term injects the candidate task ("the cumulating
        power consumptions of each PE along with the consuming power
        incurred by the current scheduled task") without mutating state.
        """
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        result = {}
        for index, name in enumerate(self._names):
            bonus = float((extra or {}).get(name, 0.0))
            if bonus < 0.0:
                raise ReproError(f"extra energy for {name!r} must be >= 0")
            result[name] = (
                float(self._energy[index]) + bonus
            ) / horizon + float(self._idle[index])
        return result

    def utilisation(self, pe: str, horizon: float) -> float:
        """Busy fraction of *pe* over ``[0, horizon]``, in [0, 1]."""
        index = self._check(pe)
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        return min(1.0, float(self._busy[index]) / horizon)

    def __repr__(self) -> str:
        return (
            f"PowerAccumulator(pes={len(self._names)}, "
            f"total_energy={self.total_energy:.2f})"
        )
