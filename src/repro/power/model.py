"""Running power accounting for the scheduler.

The power heuristics and the thermal-aware DC term all need the same
quantity while the schedule is being built: for every PE, the *cumulative*
power picture — how much energy its already-placed tasks consume, and what
its average power becomes if the candidate task is added.

:class:`PowerAccumulator` tracks that incrementally.  Average power is
defined over a time *horizon* (the tentative schedule length when the
candidate would finish): ``avg_power(pe) = energy(pe) / horizon``, which is
the physically meaningful steady-state power the thermal model should see —
a PE that executed 100 J over a 500-unit schedule dissipates 0.2 W·unit⁻¹
on average regardless of how its busy intervals are spread.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ReproError

__all__ = ["PowerAccumulator"]


class PowerAccumulator:
    """Per-PE cumulative energy and busy-time bookkeeping.

    All methods are O(1); the scheduler copies nothing — candidate queries
    are expressed as "what if" parameters instead of mutated state.
    """

    def __init__(self, pe_names: Iterable[str], idle_power: Optional[Mapping[str, float]] = None):
        names = list(pe_names)
        if not names:
            raise ReproError("PowerAccumulator needs at least one PE")
        if len(set(names)) != len(names):
            raise ReproError("duplicate PE names")
        self._energy: Dict[str, float] = {name: 0.0 for name in names}
        self._busy: Dict[str, float] = {name: 0.0 for name in names}
        self._tasks: Dict[str, int] = {name: 0 for name in names}
        self._idle: Dict[str, float] = {
            name: float((idle_power or {}).get(name, 0.0)) for name in names
        }
        for name, idle in self._idle.items():
            if idle < 0.0:
                raise ReproError(f"idle power of {name!r} must be >= 0")

    # ------------------------------------------------------------------
    def _check(self, pe: str) -> None:
        if pe not in self._energy:
            raise ReproError(f"unknown PE {pe!r} in power accumulator")

    def record(self, pe: str, power: float, duration: float) -> None:
        """Account one placed task: *power* W for *duration* time units."""
        self._check(pe)
        if power < 0.0:
            raise ReproError(f"task power must be >= 0, got {power}")
        if duration <= 0.0:
            raise ReproError(f"task duration must be positive, got {duration}")
        self._energy[pe] += power * duration
        self._busy[pe] += duration
        self._tasks[pe] += 1

    # ------------------------------------------------------------------
    def pe_names(self) -> List[str]:
        """Tracked PE names."""
        return list(self._energy)

    def energy(self, pe: str) -> float:
        """Dynamic energy committed to *pe* so far (J)."""
        self._check(pe)
        return self._energy[pe]

    def busy_time(self, pe: str) -> float:
        """Total busy time committed to *pe* so far."""
        self._check(pe)
        return self._busy[pe]

    def task_count(self, pe: str) -> int:
        """Number of tasks placed on *pe* so far."""
        self._check(pe)
        return self._tasks[pe]

    @property
    def total_energy(self) -> float:
        """Dynamic energy across all PEs (J)."""
        return sum(self._energy.values())

    # ------------------------------------------------------------------
    def average_power(self, pe: str, horizon: float) -> float:
        """Average dynamic+idle power of *pe* over ``[0, horizon]`` (W)."""
        self._check(pe)
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        return self._energy[pe] / horizon + self._idle[pe]

    def average_powers(
        self,
        horizon: float,
        extra: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Average power of every PE over ``[0, horizon]``, plus *extra* energy.

        *extra* maps PE names to additional energy (J) — this is how the
        thermal-aware DC term injects the candidate task ("the cumulating
        power consumptions of each PE along with the consuming power
        incurred by the current scheduled task") without mutating state.
        """
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        result = {}
        for name, energy in self._energy.items():
            bonus = float((extra or {}).get(name, 0.0))
            if bonus < 0.0:
                raise ReproError(f"extra energy for {name!r} must be >= 0")
            result[name] = (energy + bonus) / horizon + self._idle[name]
        return result

    def utilisation(self, pe: str, horizon: float) -> float:
        """Busy fraction of *pe* over ``[0, horizon]``, in [0, 1]."""
        self._check(pe)
        if horizon <= 0.0:
            raise ReproError(f"horizon must be positive, got {horizon}")
        return min(1.0, self._busy[pe] / horizon)

    def __repr__(self) -> str:
        return (
            f"PowerAccumulator(pes={len(self._energy)}, "
            f"total_energy={self.total_energy:.2f})"
        )
