"""Time-resolved power traces.

A :class:`PowerTrace` turns a finished schedule into the piecewise-constant
per-PE power function the transient thermal simulator integrates.  It is
built from flat ``(start, end, pe, power)`` intervals so it has no
dependency on the scheduler's types (the scheduler exports such intervals —
see :meth:`repro.core.schedule.Schedule.power_intervals`).
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = ["PowerTrace"]

Interval = Tuple[float, float, str, float]  # (start, end, pe, power)


class PowerTrace:
    """Piecewise-constant per-PE power over time.

    Parameters
    ----------
    intervals:
        ``(start, end, pe, power)`` records; intervals on the *same* PE must
        not overlap (one task at a time per PE — the schedule guarantees
        this, and the constructor re-checks it).
    idle_power:
        Baseline power per PE, added over the whole trace span.
    span:
        Total trace length; defaults to the latest interval end.
    """

    def __init__(
        self,
        intervals: Iterable[Interval],
        idle_power: Optional[Mapping[str, float]] = None,
        span: Optional[float] = None,
    ):
        records: List[Interval] = []
        for start, end, pe, power in intervals:
            if end <= start:
                raise ReproError(
                    f"interval on {pe!r} has non-positive length: [{start}, {end}]"
                )
            if power < 0.0:
                raise ReproError(f"interval power must be >= 0, got {power}")
            records.append((float(start), float(end), str(pe), float(power)))
        records.sort(key=lambda r: (r[2], r[0]))
        previous_end: Dict[str, float] = {}
        for start, end, pe, _ in records:
            if start < previous_end.get(pe, float("-inf")) - 1e-12:
                raise ReproError(f"overlapping intervals on PE {pe!r} at t={start}")
            previous_end[pe] = end
        self._intervals = sorted(records, key=lambda r: (r[0], r[1], r[2]))
        self._pes = sorted(
            set(previous_end) | set(idle_power or {})
        )
        self._idle = {pe: float((idle_power or {}).get(pe, 0.0)) for pe in self._pes}
        inferred = max((end for _, end, _, _ in records), default=0.0)
        self.span = float(span) if span is not None else inferred
        if self.span < inferred - 1e-12:
            raise ReproError(
                f"span {self.span} is shorter than the last interval end {inferred}"
            )

    # ------------------------------------------------------------------
    @property
    def pe_names(self) -> List[str]:
        """All PEs appearing in the trace (sorted)."""
        return list(self._pes)

    def breakpoints(self) -> List[float]:
        """Sorted distinct time points where some PE's power changes."""
        points = {0.0, self.span}
        for start, end, _, _ in self._intervals:
            points.add(start)
            points.add(end)
        return sorted(p for p in points if 0.0 <= p <= self.span)

    def power_at(self, time: float) -> Dict[str, float]:
        """Per-PE power at *time* (intervals are closed-open ``[start, end)``)."""
        if not (0.0 <= time <= self.span):
            raise ReproError(f"time {time} outside trace span [0, {self.span}]")
        powers = dict(self._idle)
        for start, end, pe, power in self._intervals:
            if start <= time < end:
                powers[pe] = powers.get(pe, 0.0) + power
        return powers

    def segments(self, time_scale: float = 1.0) -> List[Tuple[float, Dict[str, float]]]:
        """``(duration, pe→W)`` segments for the transient simulator.

        *time_scale* converts abstract schedule time units to seconds
        (e.g. ``1e-3`` if one unit is a millisecond).
        """
        if time_scale <= 0.0:
            raise ReproError(f"time_scale must be positive, got {time_scale}")
        points = self.breakpoints()
        segments: List[Tuple[float, Dict[str, float]]] = []
        for left, right in zip(points, points[1:]):
            if right - left <= 1e-12:
                continue
            midpoint = (left + right) / 2.0
            segments.append(((right - left) * time_scale, self.power_at(midpoint)))
        return segments

    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Dynamic + idle energy of the whole trace (J, abstract time)."""
        dynamic = sum((end - start) * power for start, end, _, power in self._intervals)
        idle = sum(self._idle.values()) * self.span
        return dynamic + idle

    def average_power(self) -> float:
        """Trace-wide average power: total energy / span (W)."""
        if self.span <= 0.0:
            return 0.0
        return self.total_energy() / self.span

    def pe_average_power(self, pe: str) -> float:
        """Average power of one PE over the span (W)."""
        if pe not in self._idle:
            raise ReproError(f"unknown PE {pe!r} in trace")
        if self.span <= 0.0:
            return 0.0
        dynamic = sum(
            (end - start) * power
            for start, end, name, power in self._intervals
            if name == pe
        )
        return dynamic / self.span + self._idle[pe]

    def average_powers(self) -> Dict[str, float]:
        """Average power of every PE over the span (W)."""
        return {pe: self.pe_average_power(pe) for pe in self._pes}

    def peak_total_power(self) -> float:
        """Maximum instantaneous total power over the trace (W)."""
        best = 0.0
        for point in self.breakpoints()[:-1]:
            best = max(best, sum(self.power_at(point).values()))
        return best

    def __repr__(self) -> str:
        return (
            f"PowerTrace(pes={len(self._pes)}, intervals={len(self._intervals)}, "
            f"span={self.span})"
        )
