"""Power-density utilities.

Temperature tracks power *density* more closely than raw power — the reason
the paper argues power-aware scheduling is not enough.  These helpers map
per-PE powers and a floorplan to W/mm² figures used in reports and tests.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import ReproError
from ..floorplan.geometry import Floorplan

__all__ = ["power_density", "peak_power_density", "density_imbalance"]


def power_density(
    floorplan: Floorplan, power_by_block: Mapping[str, float]
) -> Dict[str, float]:
    """Per-block power density (W/mm²)."""
    result: Dict[str, float] = {}
    for block in floorplan:
        power = float(power_by_block.get(block.name, 0.0))
        if power < 0.0:
            raise ReproError(f"negative power for block {block.name!r}")
        result[block.name] = power / block.area
    return result


def peak_power_density(
    floorplan: Floorplan, power_by_block: Mapping[str, float]
) -> float:
    """Highest per-block power density (W/mm²)."""
    densities = power_density(floorplan, power_by_block)
    return max(densities.values()) if densities else 0.0


def density_imbalance(
    floorplan: Floorplan, power_by_block: Mapping[str, float]
) -> float:
    """Peak-to-mean power-density ratio (≥ 1; 1 = perfectly even).

    The paper's goal of a "thermally even distribution" corresponds to
    driving this ratio toward 1.
    """
    densities = list(power_density(floorplan, power_by_block).values())
    if not densities:
        return 1.0
    mean = sum(densities) / len(densities)
    if mean <= 0.0:
        return 1.0
    return max(densities) / mean
