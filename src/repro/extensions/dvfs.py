"""Dynamic voltage/frequency scaling (DVFS) slack reclamation.

A natural extension of the paper's approach (and the dominant follow-up
direction in thermal-aware scheduling after 2005): once the ASP has fixed
the mapping and ordering, any slack between the makespan and the deadline
can be *reclaimed* by running tasks at lower voltage/frequency levels —
cutting energy quadratically in voltage and therefore lowering steady-state
temperatures further, without changing the mapping.

Model
-----
A :class:`DVFSLevel` scales a task's execution time by ``1/frequency`` and
its power by ``frequency × voltage²`` (the classic ``P ∝ C·V²·f`` model),
so energy scales by ``voltage²``.

Algorithm
---------
:func:`reclaim_slack` is a greedy level-lowering pass: repeatedly pick the
assignment with the highest energy *saving* available from dropping one
level, apply it, and recompute the schedule's timing (same mapping, same
per-PE order, same precedences); revert if the deadline breaks.  This is
the standard list-schedule slack-reclamation shape (cf. Zhang et al.,
DAC'02) and is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import Assignment, Schedule
from ..errors import SchedulingError

__all__ = ["DVFSLevel", "DEFAULT_LEVELS", "DVFSResult", "reclaim_slack",
           "retime_schedule"]


@dataclass(frozen=True)
class DVFSLevel:
    """One operating point of a PE.

    ``frequency`` and ``voltage`` are fractions of the nominal point (the
    level the technology library's WCET/WCPC were characterised at).
    """

    name: str
    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if not (0.0 < self.frequency <= 1.0):
            raise SchedulingError(
                f"level {self.name!r}: frequency must be in (0, 1], got "
                f"{self.frequency}"
            )
        if not (0.0 < self.voltage <= 1.0):
            raise SchedulingError(
                f"level {self.name!r}: voltage must be in (0, 1], got "
                f"{self.voltage}"
            )

    @property
    def time_scale(self) -> float:
        """Execution-time multiplier (≥ 1)."""
        return 1.0 / self.frequency

    @property
    def power_scale(self) -> float:
        """Dynamic-power multiplier: ``f · v²`` (≤ 1)."""
        return self.frequency * self.voltage**2

    @property
    def energy_scale(self) -> float:
        """Energy multiplier: ``v²`` (≤ 1)."""
        return self.voltage**2


#: Nominal + two scaled points, voltage tracking frequency (typical
#: embedded DVFS ladder).
DEFAULT_LEVELS: Tuple[DVFSLevel, ...] = (
    DVFSLevel("nominal", frequency=1.0, voltage=1.0),
    DVFSLevel("medium", frequency=0.8, voltage=0.85),
    DVFSLevel("slow", frequency=0.6, voltage=0.72),
)


@dataclass
class DVFSResult:
    """Outcome of a slack-reclamation pass."""

    schedule: Schedule
    levels: Dict[str, DVFSLevel]  # task -> chosen level
    energy_before: float
    energy_after: float
    makespan_before: float
    makespan_after: float
    lowered_tasks: int

    @property
    def energy_saving_fraction(self) -> float:
        """Fraction of dynamic energy removed, in [0, 1)."""
        if self.energy_before <= 0.0:
            return 0.0
        return 1.0 - self.energy_after / self.energy_before


def retime_schedule(
    schedule: Schedule,
    durations: Dict[str, float],
    powers: Dict[str, float],
) -> Schedule:
    """Recompute start/end times with new per-task durations and powers.

    The mapping (task → PE) and the per-PE execution *order* of *schedule*
    are preserved; each task starts as early as its predecessors (graph
    edges) and its PE predecessor (previous task on the same PE) allow.
    """
    graph = schedule.graph
    order_on_pe: Dict[str, List[str]] = {
        pe.name: [a.task for a in schedule.pe_assignments(pe.name)]
        for pe in schedule.architecture
    }
    pe_of = {a.task: a.pe for a in schedule}
    position: Dict[str, int] = {}
    for tasks in order_on_pe.values():
        for index, task in enumerate(tasks):
            position[task] = index

    finish: Dict[str, float] = {}
    new_assignments: Dict[str, Assignment] = {}
    # iterate until every task is placed; each round places tasks whose
    # graph predecessors and PE predecessor are both done (this always
    # progresses because the original schedule induces an acyclic order).
    # The worklist keeps the graph's task order — placement order feeds
    # dict insertion order and thus float summation order downstream
    # (total_energy), so it must not depend on set hash order.
    pending = list(graph.task_names())
    while pending:
        placed_any = False
        remaining = []
        for task_name in pending:
            preds_done = all(
                p in finish for p in graph.predecessors(task_name)
            )
            pe = pe_of[task_name]
            pos = position[task_name]
            pe_pred = order_on_pe[pe][pos - 1] if pos > 0 else None
            if not preds_done or (pe_pred is not None and pe_pred not in finish):
                remaining.append(task_name)
                continue
            ready = max(
                (finish[p] for p in graph.predecessors(task_name)),
                default=0.0,
            )
            avail = finish[pe_pred] if pe_pred is not None else 0.0
            start = max(ready, avail)
            end = start + durations[task_name]
            finish[task_name] = end
            new_assignments[task_name] = Assignment(
                task_name, pe, start, end, powers[task_name]
            )
            placed_any = True
        pending = remaining
        if pending and not placed_any:
            raise SchedulingError(
                "retiming deadlocked: the schedule's PE order conflicts "
                "with the graph's precedence order"
            )
    return Schedule(
        graph,
        schedule.architecture,
        new_assignments.values(),
        policy_name=schedule.policy_name + "+dvfs",
    )


def reclaim_slack(
    schedule: Schedule,
    levels: Sequence[DVFSLevel] = DEFAULT_LEVELS,
    deadline: Optional[float] = None,
) -> DVFSResult:
    """Greedily lower task V/F levels while the deadline still holds.

    Parameters
    ----------
    schedule:
        A complete, valid schedule at nominal V/F.
    levels:
        Available operating points, fastest first.  The first level must be
        the nominal point (frequency = voltage = 1).
    deadline:
        Target completion bound; defaults to the graph deadline.

    Returns
    -------
    DVFSResult
        With a retimed schedule whose tasks carry their scaled durations
        and powers.  The input schedule is not modified.
    """
    if not levels:
        raise SchedulingError("need at least one DVFS level")
    ladder = list(levels)
    if ladder[0].time_scale != 1.0 or ladder[0].power_scale != 1.0:
        raise SchedulingError("the first DVFS level must be the nominal point")
    ladder.sort(key=lambda lvl: lvl.time_scale)  # fastest first
    bound = float(deadline) if deadline is not None else schedule.graph.deadline

    base = {a.task: a for a in schedule}
    level_index: Dict[str, int] = {task: 0 for task in base}
    durations = {task: a.duration for task, a in base.items()}
    powers = {task: a.power for task, a in base.items()}
    current = retime_schedule(schedule, durations, powers)
    if current.makespan > bound + 1e-9:
        # no slack at all: return nominal retiming
        return DVFSResult(
            schedule=current,
            levels={task: ladder[0] for task in base},
            energy_before=schedule.total_energy,
            energy_after=current.total_energy,
            makespan_before=schedule.makespan,
            makespan_after=current.makespan,
            lowered_tasks=0,
        )

    improved = True
    while improved:
        improved = False
        # candidate savings from dropping each task one level
        candidates: List[Tuple[float, str]] = []
        for task, index in level_index.items():
            if index + 1 >= len(ladder):
                continue
            assignment = base[task]
            saving = assignment.energy * (
                ladder[index].energy_scale - ladder[index + 1].energy_scale
            )
            candidates.append((-saving, task))
        candidates.sort()
        for _, task in candidates:
            index = level_index[task] + 1
            trial_durations = dict(durations)
            trial_powers = dict(powers)
            trial_durations[task] = base[task].duration * ladder[index].time_scale
            trial_powers[task] = base[task].power * ladder[index].power_scale
            trial = retime_schedule(schedule, trial_durations, trial_powers)
            if trial.makespan <= bound + 1e-9:
                level_index[task] = index
                durations, powers = trial_durations, trial_powers
                current = trial
                improved = True
                break  # re-rank savings after each accepted move

    lowered = sum(1 for index in level_index.values() if index > 0)
    return DVFSResult(
        schedule=current,
        levels={task: ladder[index] for task, index in level_index.items()},
        energy_before=schedule.total_energy,
        energy_after=current.total_energy,
        makespan_before=schedule.makespan,
        makespan_after=current.makespan,
        lowered_tasks=lowered,
    )
