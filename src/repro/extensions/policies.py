"""Extended DC policies beyond the paper.

The paper's thermal term is the *average* block temperature.  Two natural
variants are provided as extensions (exercised by the policy-variant
ablation bench):

* :class:`ThermalPeakPolicy` — penalise the predicted **peak** block
  temperature instead of the average.  In a linear RC model the average is
  a fixed linear functional of the power vector, so it cannot "see"
  concentration on one PE; the peak can, making this variant the stronger
  hotspot-avoidance signal.
* :class:`HybridThermalPolicy` — a convex mix of average and peak,
  recovering the paper's policy at ``peak_fraction = 0``.

Both register themselves into the core DC-policy registry at import time,
so ``repro.policy_by_name("thermal-peak")`` (or ``"thermal_peak"``) works
like any built-in name and ``repro.POLICY_NAMES`` lists them.  The narrower
:func:`extended_policy_by_name` registry (thermal variants only) is kept
for the policy-variant ablation bench.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.heuristics import (
    DCContext,
    DCPolicy,
    ThermalPolicy,
    register_dc_policy,
)
from ..errors import SchedulingError

__all__ = [
    "ThermalPeakPolicy",
    "HybridThermalPolicy",
    "extended_policy_by_name",
    "EXTENDED_POLICY_NAMES",
]


def _candidate_block_powers(ctx: DCContext) -> Dict[str, float]:
    """Per-block average powers with the candidate task injected."""
    averages = ctx.accumulator.average_powers(
        ctx.horizon, extra={ctx.pe_name: ctx.energy}
    )
    mapping = ctx.pe_to_block or {}
    return {mapping.get(pe, pe): watts for pe, watts in averages.items()}


@register_dc_policy
class ThermalPeakPolicy(DCPolicy):
    """Minimise the predicted peak block temperature (extension).

    Same HotSpot query as the paper's policy, but the penalty is the
    *maximum* returned temperature.  Unlike the average, the peak rises
    superlinearly with concentration on one PE position, so this policy
    actively spreads hot tasks.
    """

    name = "thermal-peak"
    requires_thermal = True

    def __init__(self, weight: float = 20.0):
        super().__init__(weight)

    def penalty(self, ctx: DCContext) -> float:
        if ctx.thermal is None:
            raise SchedulingError(
                "ThermalPeakPolicy needs a thermal model; build the "
                "scheduler with a floorplan/HotSpotModel"
            )
        if ctx.thermal_query is not None:
            peak = ctx.thermal_query.peak_temperature(
                ctx.pe_name, ctx.energy, ctx.horizon
            )
            return self.weight * peak
        peak = ctx.thermal.peak_temperature(_candidate_block_powers(ctx))
        return self.weight * peak


@register_dc_policy
class HybridThermalPolicy(DCPolicy):
    """Convex mix of average and peak temperature (extension).

    ``peak_fraction = 0`` reproduces the paper's ``Avg_Temp`` policy;
    ``peak_fraction = 1`` is :class:`ThermalPeakPolicy`.
    """

    name = "thermal-hybrid"
    requires_thermal = True

    def __init__(self, weight: float = 20.0, peak_fraction: float = 0.5):
        super().__init__(weight)
        if not (0.0 <= peak_fraction <= 1.0):
            raise SchedulingError(
                f"peak_fraction must be in [0, 1], got {peak_fraction}"
            )
        self.peak_fraction = peak_fraction

    def penalty(self, ctx: DCContext) -> float:
        if ctx.thermal is None:
            raise SchedulingError(
                "HybridThermalPolicy needs a thermal model; build the "
                "scheduler with a floorplan/HotSpotModel"
            )
        if ctx.thermal_query is not None:
            temps_arr = ctx.thermal_query.block_temperatures(
                ctx.pe_name, ctx.energy, ctx.horizon
            )
            average = float(temps_arr.sum()) / len(temps_arr)
            peak = float(temps_arr.max())
        else:
            powers = _candidate_block_powers(ctx)
            temps = ctx.thermal.block_temperatures(powers)
            average = sum(temps.values()) / len(temps)
            peak = max(temps.values())
        mixed = (1.0 - self.peak_fraction) * average + self.peak_fraction * peak
        return self.weight * mixed


#: Extended registry (includes the paper's thermal policy for sweeps).
_EXTENDED = {
    ThermalPolicy.name: ThermalPolicy,
    ThermalPeakPolicy.name: ThermalPeakPolicy,
    HybridThermalPolicy.name: HybridThermalPolicy,
}

#: Names accepted by :func:`extended_policy_by_name`.
EXTENDED_POLICY_NAMES = tuple(_EXTENDED)


def extended_policy_by_name(name: str, weight: Optional[float] = None) -> DCPolicy:
    """Instantiate a thermal policy variant from its registry name."""
    try:
        cls = _EXTENDED[name]
    except KeyError:
        raise SchedulingError(
            f"unknown thermal policy variant {name!r}; "
            f"available: {EXTENDED_POLICY_NAMES}"
        )
    if weight is None:
        return cls()
    return cls(weight)
