"""Extensions beyond the paper: DVFS slack reclamation, policy variants.

These implement the "optional / future-work" perimeter around the DATE'05
algorithm: what the thermal-aware scheduling literature did next.  Nothing
in :mod:`repro.core` depends on this package.
"""

from .dvfs import (
    DEFAULT_LEVELS,
    DVFSLevel,
    DVFSResult,
    reclaim_slack,
    retime_schedule,
)
from .policies import (
    EXTENDED_POLICY_NAMES,
    HybridThermalPolicy,
    ThermalPeakPolicy,
    extended_policy_by_name,
)

__all__ = [
    "DVFSLevel",
    "DEFAULT_LEVELS",
    "DVFSResult",
    "reclaim_slack",
    "retime_schedule",
    "ThermalPeakPolicy",
    "HybridThermalPolicy",
    "extended_policy_by_name",
    "EXTENDED_POLICY_NAMES",
]
