"""repro — thermal-aware task allocation and scheduling for embedded systems.

A complete, from-scratch reproduction of

    W.-L. Hung, Y. Xie, N. Vijaykrishnan, M. Kandemir, M. J. Irwin,
    "Thermal-Aware Task Allocation and Scheduling for Embedded Systems",
    DATE 2005,

including every substrate the paper depends on: TGFF-style task graphs,
technology libraries, a HotSpot-style compact thermal model, genetic /
annealing slicing floorplanners, the list-scheduling ASP with the paper's
power and thermal dynamic-criticality policies, and the co-synthesis /
platform design flows.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart — the declarative flow API (the primary public surface)::

    from repro import platform_spec, run_flow

    result = run_flow(platform_spec("Bm1", policy="thermal"))
    print(result.evaluation.as_row())

Specs are frozen, JSON-serializable descriptions of a whole run; batches
parallelise and cache::

    from repro import FlowSpec, run_many, cosynthesis_spec

    specs = [cosynthesis_spec(bm, policy=p)
             for bm in ("Bm1", "Bm2") for p in ("heuristic3", "thermal")]
    results = run_many(specs, workers=4, cache_dir=".flowcache")
    spec = FlowSpec.from_json(specs[0].to_json())   # round-trips exactly

Results leave the system through one typed path: ``result.as_record()``
flattens any run to a versioned, JSON-safe :class:`~repro.results.RunRecord`,
batches stream into an append-only :class:`~repro.results.ResultStore`
(``run_many(..., store=...)`` / :func:`~repro.results.run_to_store`), and
registered analyzers (``summary``, ``compare``, ``pareto``...) report over
the stored :class:`~repro.results.RunSet` — see docs/RESULTS.md.

Every layer is observable through :mod:`repro.obs` — hierarchical
spans, a metrics registry, Chrome-trace/Prometheus exporters — at zero
cost until a recorder is enabled (``repro trace record``, the serve
daemon's ``/metrics``, or ``repro.obs.capture()``); see
docs/OBSERVABILITY.md.

The same flows are scriptable from the shell (``python -m repro --help``:
``run`` / ``sweep`` / ``scenarios`` / ``results`` / ``experiments`` /
``list``).  Legacy entry points
(``platform_flow``, ``thermal_aware_cosynthesis``, ``reclaim_slack``,
``schedule_conditional``...) keep working and return results identical to
the facade; docs/FLOW_API.md maps each onto its FlowSpec equivalent.
"""

from .errors import (
    CoSynthesisError,
    CycleError,
    DeadlineMissError,
    ExperimentError,
    FloorplanError,
    InfeasibleAllocationError,
    LibraryError,
    ReproError,
    SchedulingError,
    SingularNetworkError,
    SlicingError,
    TaskGraphError,
    ThermalError,
    UnknownPETypeError,
    UnknownTaskTypeError,
)
from .taskgraph import (
    BENCHMARK_NAMES,
    Edge,
    GraphSpec,
    Task,
    TaskGraph,
    benchmark,
    benchmark_suite,
    generate_task_graph,
)
from .library import (
    PLATFORM_PE,
    Architecture,
    PEInstance,
    PEType,
    TechnologyLibrary,
    default_catalogue,
    default_platform,
    generate_technology_library,
    library_for_graph,
)
from .power import PowerAccumulator, PowerTrace
from .floorplan import (
    Block,
    Floorplan,
    PolishExpression,
    Rect,
    anneal_floorplan,
    evolve_floorplan,
    platform_floorplan,
)
from .thermal import (
    GridModel,
    HotSpotModel,
    PackageConfig,
    ThermalNetwork,
    ThermalQueryEngine,
    TransientSimulator,
    default_package,
)
from .core import (
    POLICY_NAMES,
    Assignment,
    BaselinePolicy,
    CumulativePowerPolicy,
    ListScheduler,
    Schedule,
    TaskEnergyPolicy,
    TaskPowerPolicy,
    ThermalPolicy,
    policy_by_name,
    schedule_graph,
    static_criticality,
    thermal_scheduler,
)
from .cosynth import (
    CoSynthesisConfig,
    CoSynthesisFramework,
    CoSynthesisResult,
    PlatformResult,
    platform_flow,
    power_aware_cosynthesis,
    thermal_aware_cosynthesis,
)
from .analysis import (
    ScheduleEvaluation,
    evaluate_schedule,
    format_table,
    render_floorplan,
    render_gantt,
    render_utilisation,
)
from .cosynth import DesignPoint, explore_allocations, pareto_front
from .library import Bus, CommunicationModel, shared_bus_comm, zero_cost_comm
from .taskgraph import Condition, ConditionalTaskGraph
from .core import ConditionalEvaluation, schedule_conditional
from .thermal import LeakageModel, solve_with_leakage
from .analysis import reliability_report
from .extensions import (
    DEFAULT_LEVELS,
    DVFSLevel,
    DVFSResult,
    HybridThermalPolicy,
    ThermalPeakPolicy,
    reclaim_slack,
)
from .flow import (
    ArchitectureSpec,
    CommSpec,
    ConditionalSpec,
    CoSynthSpec,
    DVFSSpec,
    Flow,
    FloorplanSpec,
    FlowResult,
    FlowSpec,
    GraphSourceSpec,
    LeakageSpec,
    LibrarySpec,
    PolicySpec,
    ThermalSpec,
    cosynthesis_spec,
    file_source,
    generated_source,
    platform_spec,
    register_flow,
    register_floorplanner,
    register_policy,
    register_thermal_solver,
    registered_source,
    run_flow,
    run_many,
    spec_hash,
)
from .taskgraph import (
    CONDITIONAL_BENCHMARK_NAMES,
    conditional_benchmark,
    family_names,
    generate_family_graph,
)
from .library import (
    CatalogueSpec,
    catalogue_by_name,
    catalogue_names,
    register_catalogue,
)
from .scenarios import (
    ScenarioCase,
    ScenarioSpec,
    apply_overrides,
    register_scenario,
    register_workload,
    run_scenario,
    scenario,
    scenario_by_name,
    scenario_names,
    workload_names,
)
from .results import (
    RECORD_SCHEMA_VERSION,
    AnalysisReport,
    ResultStore,
    RunRecord,
    RunSet,
    analyze,
    analyzer_by_name,
    analyzer_names,
    register_analyzer,
    run_to_store,
    stream_records,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TaskGraphError",
    "CycleError",
    "LibraryError",
    "UnknownTaskTypeError",
    "UnknownPETypeError",
    "FloorplanError",
    "SlicingError",
    "ThermalError",
    "SingularNetworkError",
    "SchedulingError",
    "DeadlineMissError",
    "InfeasibleAllocationError",
    "CoSynthesisError",
    "ExperimentError",
    # task graphs
    "Task",
    "Edge",
    "TaskGraph",
    "GraphSpec",
    "generate_task_graph",
    "benchmark",
    "benchmark_suite",
    "BENCHMARK_NAMES",
    # library
    "PEType",
    "PEInstance",
    "Architecture",
    "TechnologyLibrary",
    "PLATFORM_PE",
    "default_catalogue",
    "default_platform",
    "generate_technology_library",
    "library_for_graph",
    # power
    "PowerAccumulator",
    "PowerTrace",
    # floorplan
    "Rect",
    "Block",
    "Floorplan",
    "PolishExpression",
    "anneal_floorplan",
    "evolve_floorplan",
    "platform_floorplan",
    # thermal
    "PackageConfig",
    "default_package",
    "ThermalNetwork",
    "HotSpotModel",
    "GridModel",
    "ThermalQueryEngine",
    "TransientSimulator",
    # core
    "static_criticality",
    "BaselinePolicy",
    "TaskPowerPolicy",
    "CumulativePowerPolicy",
    "TaskEnergyPolicy",
    "ThermalPolicy",
    "policy_by_name",
    "POLICY_NAMES",
    "Assignment",
    "Schedule",
    "ListScheduler",
    "schedule_graph",
    "thermal_scheduler",
    # cosynth
    "CoSynthesisConfig",
    "CoSynthesisFramework",
    "CoSynthesisResult",
    "PlatformResult",
    "platform_flow",
    "power_aware_cosynthesis",
    "thermal_aware_cosynthesis",
    # analysis
    "ScheduleEvaluation",
    "evaluate_schedule",
    "format_table",
    "render_gantt",
    "render_floorplan",
    "render_utilisation",
    # pareto & extensions
    "DesignPoint",
    "explore_allocations",
    "pareto_front",
    "DVFSLevel",
    "DEFAULT_LEVELS",
    "DVFSResult",
    "reclaim_slack",
    "ThermalPeakPolicy",
    "HybridThermalPolicy",
    "Bus",
    "CommunicationModel",
    "zero_cost_comm",
    "shared_bus_comm",
    "LeakageModel",
    "solve_with_leakage",
    "reliability_report",
    "Condition",
    "ConditionalTaskGraph",
    "ConditionalEvaluation",
    "schedule_conditional",
    "CONDITIONAL_BENCHMARK_NAMES",
    "conditional_benchmark",
    # flow API
    "FlowSpec",
    "GraphSourceSpec",
    "generated_source",
    "file_source",
    "registered_source",
    "LibrarySpec",
    "PolicySpec",
    "ArchitectureSpec",
    "FloorplanSpec",
    "ThermalSpec",
    "CommSpec",
    "CoSynthSpec",
    "DVFSSpec",
    "LeakageSpec",
    "ConditionalSpec",
    "platform_spec",
    "cosynthesis_spec",
    "spec_hash",
    "Flow",
    "FlowResult",
    "run_flow",
    "run_many",
    "register_policy",
    "register_floorplanner",
    "register_thermal_solver",
    "register_flow",
    # generated workload families
    "family_names",
    "generate_family_graph",
    # catalogues
    "CatalogueSpec",
    "register_catalogue",
    "catalogue_by_name",
    "catalogue_names",
    # scenario API
    "ScenarioCase",
    "ScenarioSpec",
    "scenario",
    "apply_overrides",
    "register_scenario",
    "scenario_by_name",
    "scenario_names",
    "run_scenario",
    "register_workload",
    "workload_names",
    # results API
    "RECORD_SCHEMA_VERSION",
    "RunRecord",
    "ResultStore",
    "RunSet",
    "AnalysisReport",
    "analyze",
    "analyzer_by_name",
    "analyzer_names",
    "register_analyzer",
    "stream_records",
    "run_to_store",
]
