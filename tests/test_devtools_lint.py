"""The ``repro.devtools.lint`` engine: rules, suppressions, CLI, self-lint.

Each rule gets a minimal fixture tree carrying exactly one known
violation, asserted down to rule id, file and line — so a rule that
drifts (or stops firing) fails here before it fails in CI.  The
repo-wide self-lint test is the live acceptance gate: the tree this
test suite ships in must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    LintError,
    LintRule,
    Violation,
    build_rules,
    collect_files,
    register_rule,
    render_json,
    render_text,
    rule_names,
    run_lint,
)
from repro.devtools.lint.engine import LINT_RULES
from repro.results.analyzers import ANALYZERS

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, sources, rules=None):
    """Write ``{relpath: source}`` under *tmp_path* and lint the tree."""
    for rel, source in sources.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return run_lint([tmp_path], rules=rules, root=tmp_path)


def one_violation(report, rule_id):
    """The single violation in *report*, asserted to carry *rule_id*."""
    assert [v.rule for v in report.violations] == [rule_id], report.violations
    return report.violations[0]


class TestDET001RandomGlobalState:
    def test_numpy_global_rand_flagged_with_location(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/sched.py":
                "import numpy as np\n"
                "\n"
                "def jitter():\n"
                "    return np.random.rand(3)\n",
        }, rules=["DET001"])
        violation = one_violation(report, "DET001")
        assert violation.path == "src/repro/core/sched.py"
        assert violation.line == 4

    def test_stdlib_global_calls_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/a.py":
                "import random\n"
                "random.shuffle([1, 2])\n",
            "src/repro/core/b.py":
                "from random import choice\n"
                "choice([1, 2])\n",
        }, rules=["DET001"])
        assert [(v.path, v.line) for v in report.violations] == [
            ("src/repro/core/a.py", 2),
            ("src/repro/core/b.py", 2),
        ]

    def test_seeded_constructors_and_rng_module_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            # explicit generators are the sanctioned path
            "src/repro/core/ok.py":
                "import numpy as np\n"
                "import random\n"
                "gen = np.random.default_rng(7)\n"
                "r = random.Random(7)\n",
            # repro/rng.py itself is the one module allowed near the APIs
            "src/repro/rng.py":
                "import random\n"
                "def as_random(seed):\n"
                "    return random.Random(seed)\n",
            # non-library code (benchmarks, fixtures) is out of scope
            "benchmarks/bench.py":
                "import random\n"
                "random.random()\n",
        }, rules=["DET001"])
        assert report.ok


class TestDET002WallClock:
    def test_time_time_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/stamp.py":
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n",
        }, rules=["DET002"])
        violation = one_violation(report, "DET002")
        assert (violation.path, violation.line) == (
            "src/repro/results/stamp.py", 4)

    def test_datetime_now_flagged_perf_counter_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/x.py":
                "import time\n"
                "from datetime import datetime\n"
                "elapsed = time.perf_counter()\n"
                "born = datetime.now()\n",
        }, rules=["DET002"])
        assert [(v.rule, v.line) for v in report.violations] == [("DET002", 4)]


class TestDET003UnorderedIteration:
    def test_for_over_set_literal_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/rows.py":
                "rows = []\n"
                "for name in {'b', 'a'}:\n"
                "    rows.append(name)\n",
        }, rules=["DET003"])
        violation = one_violation(report, "DET003")
        assert violation.line == 2

    def test_list_of_set_call_and_join_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/y.py":
                "names = list(set(['a', 'b']))\n"
                "text = ','.join({'a', 'b'})\n",
        }, rules=["DET003"])
        assert [v.line for v in report.violations] == [1, 2]

    def test_sorted_wrapper_and_reducers_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/ok.py":
                "for name in sorted({'b', 'a'}):\n"
                "    pass\n"
                "total = sum({1, 2})\n"
                "biggest = max({1, 2})\n",
        }, rules=["DET003"])
        assert report.ok


class TestSPEC001FrozenSpec:
    def test_unfrozen_spec_dataclass_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/myspec.py":
                "from dataclasses import dataclass\n"
                "\n"
                "@dataclass\n"
                "class WidgetSpec:\n"
                "    name: str = 'w'\n",
        }, rules=["SPEC001"])
        violation = one_violation(report, "SPEC001")
        assert violation.line == 4  # anchored at the class statement
        assert "frozen=True" in violation.message

    def test_serialized_spec_with_non_json_field_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/badspec.py":
                "from dataclasses import dataclass\n"
                "import numpy as np\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class MatrixSpec:\n"
                "    weights: np.ndarray = None\n"
                "    def to_dict(self):\n"
                "        return {}\n",
        }, rules=["SPEC001"])
        violation = one_violation(report, "SPEC001")
        assert "weights" in violation.message

    def test_registry_only_spec_skips_json_check(self, tmp_path):
        # no to_dict/from_dict and no _FlatSpec base: frozen is enough
        report = lint_tree(tmp_path, {
            "src/repro/scenarios/okspec.py":
                "from dataclasses import dataclass\n"
                "from typing import Callable, Optional, Tuple\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class HookSpec:\n"
                "    hook: Optional[Callable] = None\n"
                "    names: Tuple[str, ...] = ()\n",
        }, rules=["SPEC001"])
        assert report.ok


class TestPERF001DenseSolve:
    def test_cho_solve_in_scheduler_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/fastpath.py":
                "from scipy.linalg import cho_solve\n"
                "\n"
                "def query(factor, power):\n"
                "    return cho_solve(factor, power)\n",
        }, rules=["PERF001"])
        violation = one_violation(report, "PERF001")
        assert violation.line == 4

    def test_np_linalg_solve_in_flow_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/hot.py":
                "import numpy as np\n"
                "x = np.linalg.solve([[1.0]], [1.0])\n",
        }, rules=["PERF001"])
        assert one_violation(report, "PERF001").line == 2

    def test_reference_solver_modules_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/thermal/steady.py":
                "from scipy.linalg import cho_factor, cho_solve\n"
                "factor = cho_factor([[2.0]])\n"
                "x = cho_solve(factor, [1.0])\n",
            # outside the policed prefixes entirely
            "src/repro/viz/plot.py":
                "import numpy as np\n"
                "x = np.linalg.solve([[1.0]], [1.0])\n",
        }, rules=["PERF001"])
        assert report.ok


class TestSRV001ServeHandler:
    def test_flow_run_in_server_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/serve/server.py":
                "from repro.flow import Flow\n"
                "\n"
                "def handle(spec):\n"
                "    return Flow().run(spec)\n",
        }, rules=["SRV001"])
        violation = one_violation(report, "SRV001")
        assert violation.path == "src/repro/serve/server.py"
        assert violation.line == 4

    def test_build_workload_in_protocol_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/serve/protocol.py":
                "from repro.scenarios.workloads import build_workload\n"
                "pair = build_workload(None, None, ())\n",
        }, rules=["SRV001"])
        assert one_violation(report, "SRV001").line == 2

    def test_dense_solve_in_client_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/serve/client.py":
                "import numpy as np\n"
                "x = np.linalg.solve([[1.0]], [1.0])\n",
        }, rules=["SRV001"])
        assert one_violation(report, "SRV001").line == 2

    def test_workers_and_cache_are_the_allowed_consumers(self, tmp_path):
        report = lint_tree(tmp_path, {
            # execution belongs here — not policed
            "src/repro/serve/workers.py":
                "from repro.flow import Flow\n"
                "flow = Flow()\n",
            "src/repro/serve/cache.py":
                "from repro.scenarios.workloads import build_workload\n"
                "pair = build_workload(None, None, ())\n",
            # handler-path module doing handler-path things is fine
            "src/repro/serve/server.py":
                "import json\n"
                "payload = json.dumps({'ok': True})\n",
        }, rules=["SRV001"])
        assert report.ok


class TestDSE001DseStrategy:
    def test_solver_in_strategies_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/dse/strategies.py":
                "from repro.thermal.steady import SteadyStateSolver\n"
                "\n"
                "def propose(network):\n"
                "    return SteadyStateSolver(network)\n",
        }, rules=["DSE001"])
        violation = one_violation(report, "DSE001")
        assert violation.path == "src/repro/dse/strategies.py"
        assert violation.line == 4

    def test_run_many_in_candidate_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/dse/candidate.py":
                "from repro.flow.batch import run_many\n"
                "records = run_many([])\n",
        }, rules=["DSE001"])
        assert one_violation(report, "DSE001").line == 2

    def test_dense_solve_in_archive_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/dse/archive.py":
                "import numpy as np\n"
                "x = np.linalg.cholesky([[1.0]])\n",
        }, rules=["DSE001"])
        assert one_violation(report, "DSE001").line == 2

    def test_driver_and_thermal_are_the_allowed_consumers(self, tmp_path):
        report = lint_tree(tmp_path, {
            # the shared evaluator builds the solvers — not policed
            "src/repro/dse/thermal.py":
                "from repro.thermal.steady import SteadyStateSolver\n"
                "solver = SteadyStateSolver(None)\n",
            "src/repro/dse/driver.py":
                "from repro.flow.batch import run_many\n"
                "records = run_many([])\n",
            "src/repro/dse/evaluate.py":
                "from repro.flow.batch import run_many\n"
                "records = run_many([])\n",
            # strategy module doing strategy things is fine
            "src/repro/dse/strategies.py":
                "def propose(rng):\n"
                "    return rng.random()\n",
        }, rules=["DSE001"])
        assert report.ok


class TestPOOL001PoolPicklability:
    def test_lambda_submit_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/pooluse.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "pool = ProcessPoolExecutor()\n"
                "future = pool.submit(lambda: 1)\n",
        }, rules=["POOL001"])
        assert one_violation(report, "POOL001").line == 3

    def test_nested_function_submit_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/pooluse2.py":
                "def run(pool):\n"
                "    def work():\n"
                "        return 1\n"
                "    return pool.submit(work)\n",
        }, rules=["POOL001"])
        assert one_violation(report, "POOL001").line == 4

    def test_module_level_callable_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/poolok.py":
                "def work():\n"
                "    return 1\n"
                "\n"
                "def run(pool):\n"
                "    return pool.submit(work)\n",
        }, rules=["POOL001"])
        assert report.ok


class TestLOG001Print:
    def test_library_print_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/noisy.py":
                "def solve():\n"
                "    print('debug')\n",
        }, rules=["LOG001"])
        assert one_violation(report, "LOG001").line == 2

    def test_cli_module_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/cli.py": "print('table')\n",
        }, rules=["LOG001"])
        assert report.ok


class TestEXC001BroadExcept:
    def test_swallowed_broad_except_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/swallow.py":
                "try:\n"
                "    x = 1\n"
                "except Exception:\n"
                "    x = None\n",
        }, rules=["EXC001"])
        assert one_violation(report, "EXC001").line == 3

    def test_bare_except_flagged_reraise_and_specific_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/mixed.py":
                "try:\n"
                "    x = 1\n"
                "except:\n"
                "    x = None\n"
                "try:\n"
                "    y = 1\n"
                "except Exception:\n"
                "    raise\n"
                "try:\n"
                "    z = 1\n"
                "except (OSError, ValueError):\n"
                "    z = None\n",
        }, rules=["EXC001"])
        assert [v.line for v in report.violations] == [3]


class TestOBS001ObsInstrumentation:
    def test_raw_perf_counter_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/timer.py":
                "import time\n"
                "\n"
                "def run():\n"
                "    t0 = time.perf_counter()\n"
                "    return t0\n",
        }, rules=["OBS001"])
        assert one_violation(report, "OBS001").line == 4

    def test_from_time_import_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/serve/timer.py":
                "from time import perf_counter as tick\n"
                "stamp = tick()\n",
        }, rules=["OBS001"])
        assert one_violation(report, "OBS001").line == 2

    def test_stats_dict_literal_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/dse/eval.py":
                "class E:\n"
                "    def __init__(self):\n"
                "        self.stats = {'hits': 0, 'misses': 0}\n",
        }, rules=["OBS001"])
        assert one_violation(report, "OBS001").line == 3

    def test_obs_package_and_non_library_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            # the obs package is where perf_counter is supposed to live
            "src/repro/obs/recorder.py":
                "from time import perf_counter\n"
                "stamp = perf_counter()\n",
            # benchmarks/examples are outside the repro package dirs
            "benchmarks/bench_x.py":
                "import time\n"
                "t0 = time.perf_counter()\n"
                "stats = {'n': 0}\n",
        }, rules=["OBS001"])
        assert report.ok

    def test_noqa_suppresses(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/t.py":
                "import time\n"
                "t0 = time.perf_counter()  "
                "# repro: noqa[OBS001] -- calibration needs the raw timer\n",
        }, rules=["OBS001"])
        assert report.ok

    def test_counters_bundle_and_plain_dicts_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/ok.py":
                "from repro.obs import Counters\n"
                "\n"
                "class E:\n"
                "    def __init__(self):\n"
                "        self.stats = Counters(('hits',), namespace='e')\n"
                "        self.config = {'depth': 4}\n",
        }, rules=["OBS001"])
        assert report.ok


class TestRES001RetryDiscipline:
    def test_raw_time_sleep_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/waiter.py":
                "import time\n"
                "def poll():\n"
                "    time.sleep(0.5)\n",
        }, rules=["RES001"])
        assert one_violation(report, "RES001").line == 3

    def test_aliased_sleep_import_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/serve/napper.py":
                "from time import sleep as zzz\n"
                "def wait():\n"
                "    zzz(1)\n",
        }, rules=["RES001"])
        assert one_violation(report, "RES001").line == 3

    def test_unbounded_retry_loop_flagged(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/results/poller.py":
                "def fetch(get):\n"
                "    while True:\n"
                "        try:\n"
                "            return get()\n"
                "        except OSError:\n"
                "            continue\n",
        }, rules=["RES001"])
        # anchored at the handler that loops, not the while itself
        assert one_violation(report, "RES001").line == 5

    def test_bounded_loop_and_exiting_handler_allowed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/bounded.py":
                "def fetch(get):\n"
                "    for attempt in range(3):\n"
                "        try:\n"
                "            return get()\n"
                "        except OSError:\n"
                "            continue\n"
                "    raise RuntimeError('budget exhausted')\n"
                "def drain(q):\n"
                "    while True:\n"
                "        try:\n"
                "            item = q.get()\n"
                "        except KeyError:\n"
                "            break\n"
                "        if item is None:\n"
                "            return\n",
        }, rules=["RES001"])
        assert report.ok

    def test_inner_loop_continue_not_confused_with_retry(self, tmp_path):
        # the continue belongs to the nested for, not the while True
        report = lint_tree(tmp_path, {
            "src/repro/flow/nested.py":
                "def pump(batches, q):\n"
                "    while True:\n"
                "        batch = q.get()\n"
                "        if batch is None:\n"
                "            return\n"
                "        try:\n"
                "            handle(batch)\n"
                "        except ValueError:\n"
                "            for item in batch:\n"
                "                if not item:\n"
                "                    continue\n"
                "                drop(item)\n",
        }, rules=["RES001"])
        assert report.ok

    def test_resilience_package_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/resilience/retry.py":
                "import time\n"
                "def sleep_for(seconds):\n"
                "    time.sleep(seconds)\n",
        }, rules=["RES001"])
        assert report.ok

    def test_tests_and_benchmarks_are_out_of_scope(self, tmp_path):
        report = lint_tree(tmp_path, {
            "tests/test_waiting.py":
                "import time\n"
                "def test_x():\n"
                "    time.sleep(0.01)\n",
        }, rules=["RES001"])
        assert report.ok

    def test_noqa_with_justification_suppresses(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/flow/paced.py":
                "import time\n"
                "def pace():\n"
                "    time.sleep(0.1)  # repro: noqa[RES001] -- fixture:"
                " deliberate pacing outside any retry path\n",
        }, rules=["RES001"])
        assert report.ok


class TestEngineMechanics:
    def test_parse_error_reported_as_parse001(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/broken.py": "def f(:\n    pass\n",
        })
        assert [v.rule for v in report.violations] == ["PARSE001"]

    def test_unknown_rule_selection_raises(self, tmp_path):
        with pytest.raises(LintError, match="unknown lint rule"):
            lint_tree(tmp_path, {"src/repro/x.py": "x = 1\n"},
                      rules=["NOPE99"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            run_lint([tmp_path / "absent"], root=tmp_path)

    def test_collect_files_deterministic_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-310.pyc.py").write_text("x = 1\n")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_builtin_rules_registered(self):
        for rule_id in ("DET001", "DET002", "DET003", "SPEC001", "PERF001",
                        "SRV001", "DSE001", "POOL001", "REG001", "LOG001",
                        "EXC001", "RES001"):
            assert rule_id in LINT_RULES
        assert rule_names() == tuple(LINT_RULES.names())


class TestSuppressions:
    def test_justified_line_noqa_suppresses(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/ok.py":
                "def solve():\n"
                "    print('x')  # repro: noqa[LOG001] -- fixture exercising"
                " the suppression path\n",
        }, rules=["LOG001"])
        assert report.ok

    def test_unjustified_noqa_is_noqa001(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/bad.py":
                "def solve():\n"
                "    print('x')  # repro: noqa[LOG001]\n",
        }, rules=["LOG001"])
        violation = one_violation(report, "NOQA001")
        assert violation.line == 2

    def test_unknown_rule_id_is_noqa002(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/typo.py":
                "x = 1  # repro: noqa[LOG999] -- typo in the rule id\n",
        })
        assert [v.rule for v in report.violations] == ["NOQA002"]

    def test_blanket_noqa_rejected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/blanket.py":
                "x = 1  # repro: noqa[] -- suppress everything\n",
        })
        violation = one_violation(report, "NOQA002")
        assert "blanket" in violation.message

    def test_file_level_noqa_suppresses_whole_file(self, tmp_path):
        report = lint_tree(tmp_path, {
            "src/repro/core/reporter.py":
                "# repro: noqa-file[LOG001] -- fixture: this module is a"
                " reporting surface\n"
                "print('one')\n"
                "print('two')\n",
        }, rules=["LOG001"])
        assert report.ok

    def test_engine_rules_not_suppressible(self, tmp_path):
        # a noqa cannot waive the suppression audit itself
        report = lint_tree(tmp_path, {
            "src/repro/core/meta.py":
                "x = 1  # repro: noqa[NOQA001]\n",
        })
        assert "NOQA001" in {v.rule for v in report.violations}

    def test_noqa_in_string_literal_is_inert(self, tmp_path):
        # only real comment tokens count: docs may mention the syntax
        report = lint_tree(tmp_path, {
            "src/repro/core/docs.py":
                'HELP = "suppress with # repro: noqa[LOG001] -- why"\n'
                "def solve():\n"
                "    print('x')\n",
        }, rules=["LOG001"])
        violation = one_violation(report, "LOG001")
        assert violation.line == 3


class TestReporters:
    def _report(self, tmp_path):
        return lint_tree(tmp_path, {
            "src/repro/core/noisy.py": "print('x')\n",
        }, rules=["LOG001"])

    def test_text_report_names_location_and_summary(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "src/repro/core/noisy.py:1:1: LOG001" in text
        assert "1 violation(s)" in text

    def test_json_report_round_trips(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["rules"] == ["LOG001"]
        [violation] = payload["violations"]
        assert violation["rule"] == "LOG001"
        assert violation["path"] == "src/repro/core/noisy.py"
        assert violation["line"] == 1

    def test_clean_report_says_ok(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/core/ok.py": "x = 1\n"},
                           rules=["LOG001"])
        assert "repro lint: ok" in render_text(report)


class TestLintCLI:
    def test_list_rules_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "PERF001", "REG001"):
            assert rule_id in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "repro lint: ok" in capsys.readouterr().out

    def test_seeded_violation_fails_the_cli(self, tmp_path, capsys):
        # the acceptance scenario: raw np.random in a scheduler module
        target = tmp_path / "src" / "repro" / "core" / "scheduler.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import numpy as np\n"
            "\n"
            "def pick(candidates):\n"
            "    return candidates[int(np.random.rand() * len(candidates))]\n"
        )
        assert main(["lint", str(tmp_path), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "src/repro/core/scheduler.py:4" in out

    def test_json_format_and_out_file_written_on_failure(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "noisy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("print('x')\n")
        out_file = tmp_path / "lint-report.json"
        # --out is written even though the run fails: CI uploads it
        assert main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--format", "json", "-o", str(out_file),
        ]) == 1
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "LOG001"

    def test_rule_subset_selection(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "noisy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("print('x')\n")
        assert main(["lint", str(tmp_path), "--root", str(tmp_path),
                     "--rules", "DET001"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--rules", "NOPE99"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_repro_list_includes_lint_rules(self, capsys):
        assert main(["list", "lint-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "EXC001" in out


class TestREG001RegistryConsistency:
    def test_skips_outside_the_repro_repo(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/x.py": "x = 1\n"},
                           rules=["REG001"])
        assert report.ok

    def test_repo_registries_are_consistent(self):
        report = run_lint([REPO_ROOT / "src" / "repro" / "devtools"],
                          rules=["REG001"], root=REPO_ROOT)
        assert report.ok, [v.render() for v in report.violations]

    def test_undocumented_component_is_flagged(self):
        name = "lint-fixture-undocumented-analyzer"
        ANALYZERS.register(name, lambda runs, **kw: None)
        try:
            report = run_lint([REPO_ROOT / "src" / "repro" / "devtools"],
                              rules=["REG001"], root=REPO_ROOT)
            messages = [v.message for v in report.violations]
            assert any(name in m and "docs" in m for m in messages), messages
        finally:
            ANALYZERS.unregister(name)
        # the registry is back to its documented state
        assert name not in ANALYZERS

    def test_custom_rule_registration_reaches_the_engine(self):
        @register_rule
        class FixtureRule(LintRule):
            rule_id = "ZZZ901"
            title = "fixture"
            rationale = "registration round-trip"

            def check(self, ctx):
                yield Violation("ZZZ901", ctx.rel, 1, 1, "always fires")

        try:
            assert "ZZZ901" in rule_names()
            [rule] = build_rules(["ZZZ901"])
            assert isinstance(rule, FixtureRule)
        finally:
            LINT_RULES.unregister("ZZZ901")
        assert "ZZZ901" not in LINT_RULES


class TestRepoSelfLint:
    def test_whole_tree_lints_clean(self):
        # THE acceptance gate: src + benchmarks + examples, all rules,
        # zero unsuppressed violations.
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks",
             REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        assert report.ok, "\n" + "\n".join(
            v.render() for v in report.violations)
        assert report.files_checked > 100
