"""Property-based tests (hypothesis) for the task-graph substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskgraph.generator import GraphSpec, generate_task_graph
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.io import dumps_tg, graph_from_dict, graph_to_dict, loads_tg


@st.composite
def graph_specs(draw):
    """Random feasible GraphSpecs in the benchmark-size range."""
    num_tasks = draw(st.integers(min_value=1, max_value=40))
    complete = num_tasks * (num_tasks - 1) // 2
    max_extra = min(max(0, num_tasks // 2), complete - (num_tasks - 1))
    num_edges = num_tasks - 1 + draw(st.integers(min_value=0, max_value=max_extra))
    deadline = draw(st.floats(min_value=10.0, max_value=5000.0))
    return GraphSpec("prop", num_tasks, num_edges, deadline)


@st.composite
def random_dags(draw):
    """Random DAGs built edge-by-edge (not via the generator)."""
    size = draw(st.integers(min_value=1, max_value=15))
    graph = TaskGraph("dag", 100.0)
    for index in range(size):
        graph.add(f"n{index}", f"type{index % 3}")
    # only forward edges by index -> acyclic
    for src in range(size):
        for dst in range(src + 1, size):
            if draw(st.booleans()):
                graph.add_edge(f"n{src}", f"n{dst}")
    return graph


@given(spec=graph_specs(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_generator_always_matches_spec(spec, seed):
    graph = generate_task_graph(spec, seed)
    assert graph.num_tasks == spec.num_tasks
    assert graph.num_edges == spec.num_edges
    graph.validate()


@given(spec=graph_specs(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_generated_topo_order_is_permutation(spec, seed):
    graph = generate_task_graph(spec, seed)
    topo = graph.topological_order()
    assert sorted(topo) == sorted(graph.task_names())


@given(dag=random_dags())
@settings(max_examples=40, deadline=None)
def test_topological_order_respects_all_edges(dag):
    position = {name: i for i, name in enumerate(dag.topological_order())}
    for edge in dag.edges():
        assert position[edge.src] < position[edge.dst]


@given(dag=random_dags())
@settings(max_examples=40, deadline=None)
def test_longest_path_is_monotone_along_edges(dag):
    dist = dag.longest_path_to_sink(lambda t: 1.0)
    for edge in dag.edges():
        # a predecessor's distance strictly exceeds any successor's
        assert dist[edge.src] >= dist[edge.dst] + 1.0


@given(dag=random_dags())
@settings(max_examples=40, deadline=None)
def test_forward_and_backward_critical_paths_agree(dag):
    forward = dag.longest_path_from_source(lambda t: 1.0)
    backward = dag.longest_path_to_sink(lambda t: 1.0)
    if len(dag):
        assert max(forward.values()) == max(backward.values())


@given(dag=random_dags())
@settings(max_examples=30, deadline=None)
def test_dict_round_trip_preserves_structure(dag):
    restored = graph_from_dict(graph_to_dict(dag))
    assert restored.num_tasks == dag.num_tasks
    assert [e.key for e in restored.edges()] == [e.key for e in dag.edges()]


@given(dag=random_dags())
@settings(max_examples=30, deadline=None)
def test_text_round_trip_preserves_structure(dag):
    restored = loads_tg(dumps_tg(dag))
    assert restored.num_tasks == dag.num_tasks
    assert [e.key for e in restored.edges()] == [e.key for e in dag.edges()]


@given(dag=random_dags())
@settings(max_examples=30, deadline=None)
def test_ancestors_descendants_duality(dag):
    for name in dag.task_names():
        for ancestor in dag.ancestors(name):
            assert name in dag.descendants(ancestor)
