"""Tests for table formatting."""

from repro.analysis.report import format_comparison, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title_included(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.startswith("My Table")

    def test_columns_default_to_first_row(self):
        text = format_table([{"x": 1, "y": 2.5}])
        header = text.splitlines()[0]
        assert "x" in header and "y" in header

    def test_explicit_columns_and_missing_cells(self):
        text = format_table([{"a": 1}], columns=["a", "b"])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table([{"v": 3.14159}])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_bool_formatting(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_alignment(self):
        rows = [{"name": "a", "v": 1}, {"name": "longer-name", "v": 22}]
        lines = format_table(rows).splitlines()
        # all lines share the same column start for 'v'
        positions = {line.rstrip().rfind(" ") for line in lines[2:]}
        assert len(positions) == 1


class TestFormatComparison:
    def test_delta_columns(self):
        rows = [
            {"bm": "Bm1", "paper": 100.0, "ours": 92.0},
        ]
        text = format_comparison(
            rows, pairs=[("paper", "ours")], key_columns=["bm"]
        )
        assert "d(ours)" in text
        assert "-8.00" in text

    def test_non_numeric_delta_is_dash(self):
        rows = [{"bm": "Bm1", "paper": None, "ours": 92.0}]
        text = format_comparison(
            rows, pairs=[("paper", "ours")], key_columns=["bm"]
        )
        assert "-" in text.splitlines()[-1]
