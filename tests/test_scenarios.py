"""The scenario layer: grids, overrides, registries, suites, CLI.

The load-bearing test is the paper-tables equivalence: the scenario
expansion must contain the exact specs the legacy ``repro.experiments``
drivers run, and executing them through ``run_many`` must reproduce the
same evaluations byte for byte.
"""

import json

import pytest

from repro.cli import main
from repro.errors import FlowError, FlowSpecError
from repro.flow import (
    ConditionalSpec,
    FlowSpec,
    GraphSourceSpec,
    cosynthesis_spec,
    platform_spec,
    registered_source,
    run_flow,
    run_many,
    spec_hash,
)
from repro.flow.registry import FLOORPLANNERS, register_floorplanner
from repro.scenarios import (
    ScenarioCase,
    ScenarioSpec,
    apply_overrides,
    register_scenario,
    register_workload,
    scenario,
    scenario_by_name,
    scenario_names,
)


# ----------------------------------------------------------------------
# dotted-path overrides
# ----------------------------------------------------------------------
class TestApplyOverrides:
    def test_nested_override(self):
        spec = apply_overrides(platform_spec("Bm1"), {"policy.name": "baseline"})
        assert spec.policy.name == "baseline"
        assert spec.graph.name == "Bm1"

    def test_top_level_flow(self):
        spec = apply_overrides(
            cosynthesis_spec("Bm1"), {"flow": "cosynthesis"}
        )
        assert spec.flow == "cosynthesis"

    def test_floorplan_materializes_from_none(self):
        base = platform_spec("Bm1")
        assert base.floorplan is None
        spec = apply_overrides(base, {"floorplan.kind": "row"})
        assert spec.floorplan.kind == "row"

    def test_floorplan_materialization_is_flow_kind_aware(self):
        """A GA-budget override on a cosynthesis spec must materialize
        the genetic floorplanner, not the platform layout."""
        base = cosynthesis_spec("Bm1")
        assert base.floorplan is None
        spec = apply_overrides(base, {"floorplan.generations": 5})
        assert spec.floorplan.kind == "genetic"
        assert spec.floorplan.generations == 5
        platform = apply_overrides(
            platform_spec("Bm1"), {"floorplan.seed": 9}
        )
        assert platform.floorplan.kind == "platform"

    def test_unknown_section_raises(self):
        with pytest.raises(FlowSpecError, match="polcy"):
            apply_overrides(platform_spec("Bm1"), {"polcy.name": "thermal"})

    def test_unknown_leaf_raises(self):
        with pytest.raises(FlowSpecError, match="nme"):
            apply_overrides(platform_spec("Bm1"), {"policy.nme": "thermal"})

    def test_section_path_rejected(self):
        with pytest.raises(FlowSpecError, match="section"):
            apply_overrides(platform_spec("Bm1"), {"policy": "thermal"})

    def test_invalid_value_rejected_by_spec_validation(self):
        with pytest.raises(FlowSpecError):
            apply_overrides(platform_spec("Bm1"), {"graph.kind": "spreadsheet"})

    def test_cosynthesis_spec_accepts_cosynth_override(self):
        from repro.flow import CoSynthSpec

        spec = cosynthesis_spec("Bm1", cosynth=CoSynthSpec(max_pes=6))
        assert spec.cosynth.max_pes == 6
        with pytest.raises(FlowSpecError, match="not both"):
            cosynthesis_spec(
                "Bm1", cosynth=CoSynthSpec(max_pes=6), final_cost="power"
            )

    def test_original_spec_unchanged(self):
        base = platform_spec("Bm1")
        apply_overrides(base, {"policy.name": "baseline"})
        assert base.policy.name == "thermal"

    def test_kind_switch_resets_stale_graph_fields(self):
        """Changing graph.kind must not drag the old kind's name along —
        a benchmark name on a generated/file source mislabels rows."""
        base = platform_spec("Bm1")
        generated = apply_overrides(
            base, {"graph.kind": "generated", "graph.tasks": 8}
        )
        assert generated.graph.name == ""  # auto-labels at build time
        file_spec = apply_overrides(
            base, {"graph.kind": "file", "graph.path": "w.tg"}
        )
        assert file_spec.graph.name == ""
        # same kind: explicit fields survive untouched
        renamed = apply_overrides(base, {"graph.name": "Bm2"})
        assert renamed.graph.name == "Bm2"


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------
class TestExpansion:
    def test_cross_product_order_rightmost_fastest(self):
        suite = scenario(
            "t",
            platform_spec("Bm1", policy="baseline"),
            grid={
                "graph.name": ("Bm1", "Bm2"),
                "policy.name": ("baseline", "thermal"),
            },
        )
        combos = [(s.graph.name, s.policy.name) for s in suite.expand()]
        assert combos == [
            ("Bm1", "baseline"), ("Bm1", "thermal"),
            ("Bm2", "baseline"), ("Bm2", "thermal"),
        ]

    def test_empty_grid_expands_to_base(self):
        base = platform_spec("Bm3")
        suite = scenario("t", base)
        assert suite.expand() == [base]

    def test_dedup_keeps_first_occurrence(self):
        base = platform_spec("Bm1", policy="baseline")
        suite = ScenarioSpec(
            name="t",
            cases=(
                ScenarioCase(base, grid={"policy.name": ("baseline", "thermal")}),
                ScenarioCase(base, grid={"policy.name": ("thermal", "heuristic1")}),
            ),
        )
        names = [s.policy.name for s in suite.expand()]
        assert names == ["baseline", "thermal", "heuristic1"]
        assert suite.size() == 4  # pre-dedup grid points

    def test_single_value_axis_accepted(self):
        suite = scenario(
            "t", platform_spec("Bm1"), grid={"graph.name": "Bm2"}
        )
        assert [s.graph.name for s in suite.expand()] == ["Bm2"]

    def test_duplicate_axis_rejected(self):
        with pytest.raises(FlowSpecError, match="duplicate"):
            scenario(
                "t",
                platform_spec("Bm1"),
                grid=[("graph.name", ("Bm1",)), ("graph.name", ("Bm2",))],
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(FlowSpecError, match="no values"):
            scenario("t", platform_spec("Bm1"), grid={"graph.name": ()})

    def test_with_grid_replaces_in_place_and_appends(self):
        suite = scenario(
            "t",
            platform_spec("Bm1", policy="baseline"),
            grid={
                "graph.name": ("Bm1", "Bm2", "Bm3", "Bm4"),
                "policy.name": ("baseline", "thermal"),
            },
        )
        reduced = suite.with_grid(
            {"graph.name": ("Bm1",), "dvfs.enabled": (True,)}
        )
        specs = reduced.expand()
        assert len(specs) == 2
        assert all(s.graph.name == "Bm1" for s in specs)
        assert all(s.dvfs.enabled for s in specs)
        # the original scenario is untouched
        assert len(suite.expand()) == 8

    def test_expansion_feeds_run_many(self):
        suite = scenario(
            "t",
            platform_spec("Bm1", policy="baseline"),
            grid={"policy.name": ("baseline", "heuristic3")},
        )
        results = run_many(suite.expand())
        assert [r.spec.policy.name for r in results] == ["baseline", "heuristic3"]


# ----------------------------------------------------------------------
# registries (scenario + the normalization satellite)
# ----------------------------------------------------------------------
class TestRegistries:
    def test_builtin_suites_registered(self):
        for name in (
            "paper-tables", "policy-ablation", "scaling-stress",
            "conditional-suite",
        ):
            assert name in scenario_names()

    def test_normalized_lookup(self):
        assert scenario_by_name("paper_tables") is scenario_by_name("paper-tables")

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(FlowError, match="available"):
            scenario_by_name("nonexistent")

    def test_register_rejects_shadowing(self):
        with pytest.raises(FlowError, match="already registered"):
            register_scenario(
                scenario("paper_tables", platform_spec("Bm1"))
            )

    def test_register_rejects_non_scenario(self):
        with pytest.raises(FlowSpecError):
            register_scenario("paper-tables")

    def test_policy_ablation_sees_late_registrations(self):
        """The suite is built per lookup, so a policy registered after
        import still joins the ablation grid."""
        from repro.core.heuristics import ThermalPolicy, register_dc_policy

        class LateTestPolicy(ThermalPolicy):
            name = "late-test-policy"

        register_dc_policy(LateTestPolicy)
        specs = scenario_by_name("policy-ablation").expand()
        assert "late-test-policy" in {s.policy.name for s in specs}

    def test_factory_registration_needs_a_name(self):
        with pytest.raises(FlowSpecError, match="name"):
            register_scenario(lambda: scenario("x", platform_spec("Bm1")))

    def test_floorplanner_registry_normalizes(self):
        """Satellite: component registries share the policy registry's
        hyphen/underscore behaviour."""
        if "norm-check" not in FLOORPLANNERS:
            register_floorplanner(
                "norm-check", lambda arch, spec: FLOORPLANNERS.get("platform")(arch, spec)
            )
        assert FLOORPLANNERS.get("norm_check") is FLOORPLANNERS.get("norm-check")
        assert "norm_check" in FLOORPLANNERS
        with pytest.raises(FlowError, match="already registered"):
            register_floorplanner("norm_check", lambda arch, spec: None)

    def test_thermal_and_flow_registries_normalize(self):
        from repro.flow.registry import FLOWS, THERMAL_SOLVERS, register_thermal_solver

        if "norm_solver" not in THERMAL_SOLVERS:
            register_thermal_solver(
                "norm_solver", THERMAL_SOLVERS.get("hotspot")
            )
        assert THERMAL_SOLVERS.get("norm-solver") is THERMAL_SOLVERS.get("norm_solver")
        assert FLOWS.get("platform") is FLOWS.get("platform")


# ----------------------------------------------------------------------
# built-in suites
# ----------------------------------------------------------------------
class TestBuiltinSuites:
    def test_paper_tables_contains_every_legacy_spec(self):
        """Structural equivalence with the repro.experiments drivers."""
        expansion = {spec_hash(s) for s in scenario_by_name("paper-tables").expand()}
        legacy = []
        for bm in ("Bm1", "Bm2", "Bm3", "Bm4"):
            # table1 rows
            legacy.append(cosynthesis_spec(
                bm, policy="baseline",
                final_cost="performance", screening="performance",
            ))
            for pol in ("heuristic1", "heuristic2", "heuristic3"):
                legacy.append(cosynthesis_spec(
                    bm, policy=pol, final_cost="power", screening="default",
                ))
                legacy.append(platform_spec(bm, policy=pol))
            legacy.append(platform_spec(bm, policy="baseline"))
            # table2 rows
            legacy.append(cosynthesis_spec(bm, policy="heuristic3", final_cost="power"))
            legacy.append(cosynthesis_spec(bm, policy="thermal", final_cost="thermal"))
            # table3 rows
            legacy.append(platform_spec(bm, policy="heuristic3"))
            legacy.append(platform_spec(bm, policy="thermal"))
        missing = [s for s in legacy if spec_hash(s) not in expansion]
        assert not missing

    def test_paper_tables_platform_rows_byte_identical_to_table3(self):
        """Numeric equivalence on the (fast) platform half of the suite."""
        from repro.experiments.table3 import run_table3

        specs = [
            s for s in scenario_by_name("paper-tables").expand()
            if s.flow == "platform" and s.policy.name in ("heuristic3", "thermal")
        ]
        results = run_many(specs)
        approach = {"heuristic3": "power_aware", "thermal": "thermal_aware"}
        legacy = {
            (row["benchmark"], row["approach"]): row for row in run_table3()
        }
        assert len(specs) == 8
        for spec, result in zip(specs, results):
            row = legacy[(spec.graph.name, approach[spec.policy.name])]
            evaluation = result.evaluation
            assert round(evaluation.total_power, 2) == row["total_pow"]
            assert round(evaluation.max_temperature, 2) == row["max_temp"]
            assert round(evaluation.avg_temperature, 2) == row["avg_temp"]

    def test_policy_ablation_covers_registered_policies(self):
        from repro import POLICY_NAMES

        specs = scenario_by_name("policy-ablation").expand()
        swept = {s.policy.name for s in specs}
        assert swept == set(POLICY_NAMES)

    def test_scaling_stress_specs_are_valid_and_distinct(self):
        specs = scenario_by_name("scaling-stress").expand()
        assert len(specs) == 18
        assert len({spec_hash(s) for s in specs}) == 18
        assert all(s.graph.kind == "generated" for s in specs)

    def test_conditional_suite_round_trips(self):
        specs = scenario_by_name("conditional-suite").expand()
        assert len(specs) == 9
        for spec in specs:
            assert spec.conditional.enabled
            assert FlowSpec.from_json(spec.to_json()) == spec


# ----------------------------------------------------------------------
# registered workloads
# ----------------------------------------------------------------------
def _tiny_graph():
    from repro.taskgraph import TaskGraph

    graph = TaskGraph("tiny-pipeline", deadline=400.0)
    graph.add("in", "type0")
    graph.add("work", "type1")
    graph.add("out", "type0")
    graph.add_edge("in", "work", 2.0)
    graph.add_edge("work", "out", 2.0)
    graph.validate()
    return graph


class TestRegisteredWorkloads:
    def test_registered_workload_end_to_end(self):
        register_workload("tiny-pipeline", _tiny_graph)
        spec = platform_spec(
            policy="heuristic3", graph=registered_source("tiny-pipeline")
        )
        result = run_flow(spec)
        assert result.schedule.graph.name == "tiny-pipeline"
        results = run_many([spec, spec])
        assert results[0] is results[1]

    def test_registered_workload_through_cli(self, capsys):
        register_workload("tiny-pipeline", _tiny_graph)
        assert main([
            "run", "--policy", "heuristic3", "--json",
            "--set", "graph.kind=registered",
            "--set", "graph.name=tiny-pipeline",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["row"]["benchmark"] == "tiny-pipeline"

    def test_unknown_registered_workload_fails_at_run(self):
        spec = platform_spec(graph=registered_source("never-registered"))
        with pytest.raises(FlowError, match="available"):
            run_flow(spec)

    def test_registered_specs_skip_the_persistent_cache(self, tmp_path):
        """spec_hash cannot see factory changes, so file/registered
        specs must recompute instead of replaying stale pickles."""
        register_workload("tiny-pipeline", _tiny_graph)
        spec = platform_spec(
            policy="heuristic3", graph=registered_source("tiny-pipeline")
        )
        run_many([spec], cache_dir=tmp_path)
        assert list(tmp_path.glob("*.pkl")) == []
        again = run_many([spec], cache_dir=tmp_path)
        assert not again[0].provenance.get("cache_hit")

    def test_benchmark_specs_still_cache(self, tmp_path):
        spec = platform_spec("Bm1", policy="heuristic3")
        run_many([spec], cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        assert run_many([spec], cache_dir=tmp_path)[0].provenance["cache_hit"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestScenarioCLI:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-tables" in out and "scaling-stress" in out

    def test_scenarios_list_json(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"paper-tables", "policy-ablation"} <= {r["scenario"] for r in rows}

    def test_scenarios_show_with_set(self, capsys):
        assert main([
            "scenarios", "show", "policy-ablation",
            "--set", "graph.name=Bm1",
            "--set", "policy.name=baseline,thermal",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 specs" in out

    def test_scenarios_show_json_round_trips(self, capsys):
        assert main([
            "scenarios", "show", "conditional-suite", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 9
        for entry in payload:
            FlowSpec.from_dict(entry)

    def test_scenarios_run_reduced(self, capsys, tmp_path):
        argv = [
            "scenarios", "run", "policy-ablation",
            "--set", "graph.name=Bm1",
            "--set", "policy.name=baseline,heuristic3",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "2 flows (0 cached)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "2 flows (2 cached)" in capsys.readouterr().out

    def test_scenarios_run_json(self, capsys):
        assert main([
            "scenarios", "run", "policy-ablation",
            "--set", "graph.name=Bm1", "--set", "policy.name=baseline",
            "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["row"]["benchmark"] == "Bm1"

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenarios", "show", "gizmo"]) == 2
        assert "available" in capsys.readouterr().err

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for needle in (
            "benchmarks:", "generator-families:", "catalogues:", "registered:",
        ):
            assert needle in out

    def test_workloads_list_json(self, capsys):
        assert main(["workloads", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "layered" in payload["generator-families"]
        assert "big-little" in payload["catalogues"]

    def test_list_includes_new_sections(self, capsys):
        assert main(["list", "catalogues"]) == 0
        assert "big-little" in capsys.readouterr().out
        assert main(["list", "scenarios"]) == 0
        assert "paper-tables" in capsys.readouterr().out

    def test_bad_set_syntax_fails(self, capsys):
        assert main([
            "scenarios", "run", "policy-ablation", "--set", "oops",
        ]) == 1
        assert "--set" in capsys.readouterr().err

    def test_bad_set_value_type_exits_cleanly(self, capsys):
        """A JSON list where a scalar belongs is a FlowSpecError with
        exit 1, not an uncaught TypeError traceback."""
        assert main([
            "run", "--set", "graph.kind=generated",
            "--set", "graph.tasks=[24,48]",
        ]) == 1
        assert "tasks" in capsys.readouterr().err

    def test_spec_file_conflicts_with_run_flags(self, capsys, tmp_path):
        """--spec is complete; other run flags must error, not be
        silently dropped."""
        path = tmp_path / "spec.json"
        path.write_text(platform_spec("Bm1", policy="baseline").to_json())
        assert main(["run", "--spec", str(path), "--dvfs",
                     "--policy", "heuristic1"]) == 1
        err = capsys.readouterr().err
        assert "--dvfs" in err and "--policy" in err
        # --set remains the supported override path for spec files
        assert main(["run", "--spec", str(path), "--set",
                     "policy.name=heuristic3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["policy"]["name"] == "heuristic3"
