"""RunRecord: JSON-safety, strict round-trips, canonical rows."""

import enum
import json
import pathlib

import numpy as np
import pytest

from repro.errors import ResultError
from repro.flow import DVFSSpec, FlowSpec, platform_spec, run_flow, spec_hash
from repro.results import (
    RECORD_SCHEMA_VERSION,
    ROW_COLUMNS,
    RunRecord,
    json_safe,
    metrics_from_evaluation,
    row_from_metrics,
)


@pytest.fixture(scope="module")
def result():
    return run_flow(platform_spec("Bm1", policy="thermal"))


@pytest.fixture(scope="module")
def record(result):
    return RunRecord.from_result(result, suite="unit", scenario="case-a")


class TestJsonSafe:
    def test_numpy_scalars_become_builtins(self):
        assert json_safe(np.float64(1.5)) == 1.5
        assert type(json_safe(np.float64(1.5))) is float
        assert json_safe(np.int32(7)) == 7
        assert type(json_safe(np.int64(7))) is int
        assert json_safe(np.bool_(True)) is True

    def test_numpy_arrays_become_lists(self):
        assert json_safe(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_paths_become_strings(self):
        assert json_safe(pathlib.Path("a/b.json")) == str(pathlib.Path("a/b.json"))

    def test_enums_become_values(self):
        class Kind(enum.Enum):
            HOT = "hot"

        assert json_safe(Kind.HOT) == "hot"

    def test_containers_normalize(self):
        assert json_safe((1, 2)) == [1, 2]
        assert json_safe({3, 1, 2}) == [1, 2, 3]
        assert json_safe({1: "a"}) == {"1": "a"}

    def test_non_finite_floats_become_null(self):
        assert json_safe(float("nan")) is None
        assert json_safe(float("inf")) is None

    def test_unserializable_objects_rejected(self):
        with pytest.raises(ResultError, match="not"):
            json_safe(object())


class TestFromResult:
    def test_everything_is_strictly_serializable(self, record):
        # the satellite contract: no default= hook anywhere
        text = json.dumps(record.to_dict(), allow_nan=False)
        assert json.loads(text) == record.to_dict()

    def test_as_dict_is_the_canonical_record(self, result, record):
        assert result.as_dict() == RunRecord.from_result(result).to_dict()
        assert json.dumps(result.as_dict(), allow_nan=False)

    def test_as_row_matches_record_row(self, result, record):
        assert result.as_row() == dict(record.row)
        assert tuple(record.row) == ROW_COLUMNS

    def test_metrics_keep_full_precision(self, result, record):
        assert record.metrics["max_temperature"] == pytest.approx(
            float(result.evaluation.max_temperature), abs=0.0
        )
        assert set(record.metrics["pe_temperatures"]) == set(
            result.evaluation.pe_temperatures
        )
        assert all(
            type(v) is float for v in record.metrics["pe_temperatures"].values()
        )

    def test_identity_fields(self, result, record):
        assert record.flow == "platform"
        assert record.spec_hash == result.provenance["spec_hash"]
        assert record.spec == result.spec.to_dict()
        assert record.suite == "unit"
        assert record.scenario == "case-a"
        assert record.schema_version == RECORD_SCHEMA_VERSION

    def test_spec_obj_round_trips(self, record):
        spec = record.spec_obj()
        assert isinstance(spec, FlowSpec)
        assert spec_hash(spec) == record.spec_hash

    def test_conditional_record_uses_the_result_level_verdict(self):
        """metrics.meets_deadline reflects FlowResult.meets_deadline
        (the all-scenarios aggregate for conditional flows), not just
        the nominal evaluation."""
        from repro.flow import ConditionalSpec, GraphSourceSpec

        result = run_flow(
            FlowSpec(
                flow="platform",
                graph=GraphSourceSpec(kind="conditional", name="video-frame"),
                conditional=ConditionalSpec(enabled=True),
            )
        )
        record = RunRecord.from_result(result)
        assert record.metrics["meets_deadline"] == result.meets_deadline
        assert record.row["meets_deadline"] == result.meets_deadline
        assert record.conditional is not None
        assert record.conditional["scenarios"] >= 1

    def test_non_finite_metrics_produce_a_record_not_a_crash(self):
        from repro.results import row_from_metrics

        metrics = {
            "benchmark": "x", "architecture": "a", "policy": "p",
            "total_power": None, "max_temperature": None,
            "avg_temperature": 50.0, "makespan": None,
            "deadline": 100.0, "meets_deadline": False,
        }
        row = row_from_metrics(metrics)
        assert row["total_pow"] is None
        assert row["avg_temp"] == 50.0

    def test_dvfs_payload_captured(self):
        result = run_flow(
            platform_spec("Bm1", policy="thermal", dvfs=DVFSSpec(enabled=True))
        )
        record = RunRecord.from_result(result)
        assert record.dvfs is not None
        assert 0.0 <= record.dvfs["energy_saving_fraction"] <= 1.0
        json.dumps(record.to_dict(), allow_nan=False)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self, record):
        assert RunRecord.from_dict(record.to_dict()) == record

    def test_json_round_trip_is_identity(self, record):
        assert RunRecord.from_json(record.to_json()) == record

    def test_sorted_json_restores_row_column_order(self, record):
        # to_json sorts keys; from_dict must restore the paper order
        reloaded = RunRecord.from_json(record.to_json(indent=2))
        assert tuple(reloaded.row) == ROW_COLUMNS

    def test_unknown_keys_rejected(self, record):
        payload = dict(record.to_dict())
        payload["rogue"] = 1
        with pytest.raises(ResultError, match="rogue"):
            RunRecord.from_dict(payload)

    def test_missing_required_keys_rejected(self, record):
        payload = dict(record.to_dict())
        del payload["metrics"]
        with pytest.raises(ResultError, match="metrics"):
            RunRecord.from_dict(payload)

    def test_wrong_schema_version_rejected(self, record):
        payload = dict(record.to_dict())
        payload["schema_version"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(ResultError, match="version"):
            RunRecord.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ResultError, match="JSON"):
            RunRecord.from_json("{nope")


class TestAccess:
    def test_dotted_get(self, record):
        assert record.get("spec.policy.name") == "thermal"
        assert record.get("metrics.benchmark") == "Bm1"
        assert record.get("row.total_pow") == record.row["total_pow"]

    def test_get_missing_returns_default(self, record):
        assert record.get("metrics.nope") is None
        assert record.get("a.b.c", default=42) == 42


class TestCanonicalHelpers:
    def test_evaluation_as_row_goes_through_the_shared_flattening(self, result):
        evaluation = result.evaluation
        expected = row_from_metrics(metrics_from_evaluation(evaluation))
        assert evaluation.as_row() == expected
