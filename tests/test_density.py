"""Tests for power-density utilities."""

import pytest

from repro.errors import ReproError
from repro.floorplan.geometry import Floorplan
from repro.power.density import (
    density_imbalance,
    peak_power_density,
    power_density,
)


@pytest.fixture
def plan():
    plan = Floorplan()
    plan.place("big", 0.0, 0.0, 10.0, 10.0)  # 100 mm2
    plan.place("small", 10.0, 0.0, 5.0, 5.0)  # 25 mm2
    return plan


def test_power_density(plan):
    densities = power_density(plan, {"big": 10.0, "small": 5.0})
    assert densities["big"] == pytest.approx(0.1)
    assert densities["small"] == pytest.approx(0.2)


def test_missing_blocks_get_zero(plan):
    densities = power_density(plan, {})
    assert densities == {"big": 0.0, "small": 0.0}


def test_negative_power_rejected(plan):
    with pytest.raises(ReproError):
        power_density(plan, {"big": -1.0})


def test_peak_power_density(plan):
    assert peak_power_density(plan, {"big": 10.0, "small": 5.0}) == pytest.approx(0.2)


def test_peak_density_empty_plan():
    assert peak_power_density(Floorplan(), {}) == 0.0


def test_density_imbalance_even(plan):
    # equal densities: 10 W on 100 mm2 and 2.5 W on 25 mm2
    assert density_imbalance(plan, {"big": 10.0, "small": 2.5}) == pytest.approx(1.0)


def test_density_imbalance_skewed(plan):
    # all power on the small block: peak = 0.4, mean = 0.2
    assert density_imbalance(plan, {"small": 10.0}) == pytest.approx(2.0)


def test_density_imbalance_no_power(plan):
    assert density_imbalance(plan, {}) == 1.0
