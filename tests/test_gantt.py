"""Tests for text rendering of schedules and floorplans."""

import pytest

from repro.analysis.gantt import render_floorplan, render_gantt, render_utilisation
from repro.core.scheduler import schedule_graph
from repro.errors import ReproError
from repro.floorplan.geometry import Floorplan
from repro.library.presets import default_platform


@pytest.fixture
def schedule(bm1, bm1_library):
    return schedule_graph(bm1, default_platform(), bm1_library)


class TestGantt:
    def test_one_row_per_pe(self, schedule):
        lines = render_gantt(schedule).splitlines()
        pe_lines = [l for l in lines if "|" in l]
        assert len(pe_lines) == len(schedule.architecture)

    def test_mentions_makespan_and_deadline(self, schedule):
        text = render_gantt(schedule)
        assert f"{schedule.makespan:.1f}" in text
        assert "deadline" in text

    def test_task_names_appear(self, schedule):
        text = render_gantt(schedule, width=120)
        # at least some task labels should be embedded
        shown = sum(1 for t in schedule.graph.task_names() if t in text)
        assert shown >= 3

    def test_narrow_width_rejected(self, schedule):
        with pytest.raises(ReproError):
            render_gantt(schedule, width=4)


class TestFloorplanRender:
    def test_all_blocks_in_legend(self, platform_plan):
        text = render_floorplan(platform_plan)
        for name in platform_plan.block_names():
            assert name in text

    def test_die_size_mentioned(self, platform_plan):
        text = render_floorplan(platform_plan)
        assert "24.0 x 6.0 mm" in text

    def test_empty_plan(self):
        assert "(empty floorplan)" in render_floorplan(Floorplan())

    def test_bad_scale_rejected(self, platform_plan):
        with pytest.raises(ReproError):
            render_floorplan(platform_plan, scale_mm=0.0)


class TestUtilisation:
    def test_one_bar_per_pe(self, schedule):
        lines = render_utilisation(schedule).splitlines()
        assert len(lines) == len(schedule.architecture)
        assert all("W avg" in line for line in lines)

    def test_percentages_bounded(self, schedule):
        text = render_utilisation(schedule)
        for line in text.splitlines():
            percent = float(line.split("|")[2].split("%")[0])
            assert 0.0 <= percent <= 100.0

    def test_bad_width_rejected(self, schedule):
        with pytest.raises(ReproError):
            render_utilisation(schedule, width=2)
