"""Tests for the ASP list scheduler."""

import pytest

from repro.core.heuristics import (
    BaselinePolicy,
    CumulativePowerPolicy,
    TaskEnergyPolicy,
    TaskPowerPolicy,
    ThermalPolicy,
)
from repro.core.scheduler import ListScheduler, schedule_graph
from repro.core.thermal_loop import thermal_scheduler
from repro.errors import (
    DeadlineMissError,
    InfeasibleAllocationError,
    UnknownTaskTypeError,
)
from repro.library.pe import Architecture, PEType
from repro.library.presets import default_platform
from repro.library.technology import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def two_pe_arch():
    arch = Architecture("duo")
    arch.add_instance(PEType("fast", 6.0, 6.0))
    arch.add_instance(PEType("slow", 5.0, 5.0))
    return arch


@pytest.fixture
def simple_lib():
    library = TechnologyLibrary()
    library.add_entry("t0", "fast", wcet=10.0, wcpc=8.0)
    library.add_entry("t0", "slow", wcet=20.0, wcpc=3.0)
    library.add_entry("t1", "fast", wcet=15.0, wcpc=10.0)
    library.add_entry("t1", "slow", wcet=30.0, wcpc=4.0)
    return library


def fan_graph(width=4, deadline=400.0):
    graph = TaskGraph("fan", deadline)
    graph.add("src", "t0")
    for index in range(width):
        graph.add(f"w{index}", "t1")
        graph.add_edge("src", f"w{index}")
    return graph


class TestBasicCorrectness:
    def test_schedule_is_complete_and_valid(self, two_pe_arch, simple_lib):
        graph = fan_graph()
        schedule = schedule_graph(graph, two_pe_arch, simple_lib)
        assert len(schedule) == graph.num_tasks
        schedule.validate(simple_lib)

    def test_policy_name_recorded(self, two_pe_arch, simple_lib):
        schedule = schedule_graph(
            fan_graph(), two_pe_arch, simple_lib, TaskEnergyPolicy()
        )
        assert schedule.policy_name == "heuristic3"

    def test_chain_is_serial(self, simple_lib, two_pe_arch):
        graph = TaskGraph("chain", 500.0)
        graph.add("a", "t0")
        graph.add("b", "t0")
        graph.add_edge("a", "b")
        schedule = schedule_graph(graph, two_pe_arch, simple_lib)
        a, b = schedule.assignment("a"), schedule.assignment("b")
        assert b.start >= a.end

    def test_baseline_prefers_fast_pe_for_critical_path(
        self, two_pe_arch, simple_lib
    ):
        # a single task: DC = SC - wcet - start; the fast PE wins
        graph = TaskGraph("one", 100.0)
        graph.add("only", "t0")
        schedule = schedule_graph(graph, two_pe_arch, simple_lib)
        assert schedule.assignment("only").pe == "pe0"

    def test_parallel_tasks_use_both_pes(self, two_pe_arch, simple_lib):
        schedule = schedule_graph(fan_graph(width=4), two_pe_arch, simple_lib)
        used = {a.pe for a in schedule}
        assert used == {"pe0", "pe1"}

    def test_deterministic(self, two_pe_arch, simple_lib):
        a = schedule_graph(fan_graph(), two_pe_arch, simple_lib)
        b = schedule_graph(fan_graph(), two_pe_arch, simple_lib)
        assert [(x.task, x.pe, x.start) for x in a.assignments()] == [
            (x.task, x.pe, x.start) for x in b.assignments()
        ]

    def test_durations_and_powers_match_library(self, two_pe_arch, simple_lib):
        schedule = schedule_graph(fan_graph(), two_pe_arch, simple_lib)
        for assignment in schedule:
            pe = two_pe_arch.pe(assignment.pe)
            task_type = "t0" if assignment.task == "src" else "t1"
            assert assignment.duration == pytest.approx(
                simple_lib.wcet(task_type, pe)
            )
            assert assignment.power == pytest.approx(
                simple_lib.power(task_type, pe)
            )


class TestFeasibilityChecks:
    def test_uncovered_task_type_raises_at_build(self, two_pe_arch):
        library = TechnologyLibrary()
        library.add_entry("t0", "fast", 10.0, 5.0)
        graph = TaskGraph("g", 100.0)
        graph.add("a", "orphan-type")
        with pytest.raises(UnknownTaskTypeError):
            ListScheduler(graph, two_pe_arch, library)

    def test_deadline_check_raises(self, two_pe_arch, simple_lib):
        graph = fan_graph(width=6, deadline=20.0)  # impossible deadline
        scheduler = ListScheduler(graph, two_pe_arch, simple_lib)
        with pytest.raises(DeadlineMissError) as excinfo:
            scheduler.run(check_deadline=True)
        assert excinfo.value.makespan > excinfo.value.deadline

    def test_deadline_not_checked_by_default(self, two_pe_arch, simple_lib):
        graph = fan_graph(width=6, deadline=20.0)
        schedule = schedule_graph(graph, two_pe_arch, simple_lib)
        assert not schedule.meets_deadline

    def test_thermal_policy_without_model_raises(self, two_pe_arch, simple_lib):
        scheduler = ListScheduler(fan_graph(), two_pe_arch, simple_lib)
        with pytest.raises(InfeasibleAllocationError):
            scheduler.run(ThermalPolicy())


class TestHeterogeneousChoices:
    def test_h1_prefers_low_power_pe(self, two_pe_arch, simple_lib):
        # one task, huge weight: slow PE draws 3 W vs fast 8 W
        graph = TaskGraph("one", 1000.0)
        graph.add("only", "t0")
        schedule = schedule_graph(
            graph, two_pe_arch, simple_lib, TaskPowerPolicy(weight=100.0)
        )
        assert schedule.assignment("only").pe == "pe1"

    def test_h3_prefers_low_energy_pe(self, two_pe_arch, simple_lib):
        # t0: fast = 10*8 = 80 J, slow = 20*3 = 60 J
        graph = TaskGraph("one", 1000.0)
        graph.add("only", "t0")
        schedule = schedule_graph(
            graph, two_pe_arch, simple_lib, TaskEnergyPolicy(weight=10.0)
        )
        assert schedule.assignment("only").pe == "pe1"

    def test_h2_balances_energy_across_pes(self, two_pe_arch, simple_lib):
        schedule = schedule_graph(
            fan_graph(width=6),
            two_pe_arch,
            simple_lib,
            CumulativePowerPolicy(weight=50.0),
        )
        counts = schedule.pe_task_counts()
        assert counts["pe1"] >= 2  # the slow PE gets meaningful work


class TestThermalScheduling:
    def test_thermal_scheduler_runs_thermal_policy(self, bm1, bm1_library):
        platform = default_platform()
        scheduler = thermal_scheduler(bm1, platform, bm1_library)
        schedule = scheduler.run(ThermalPolicy())
        schedule.validate(bm1_library)
        assert schedule.policy_name == "thermal"

    def test_thermal_beats_baseline_on_avg_temperature(self, bm1, bm1_library):
        """The paper's core claim on the platform architecture."""
        from repro.analysis.metrics import evaluate_schedule
        from repro.floorplan.platform import platform_floorplan

        platform = default_platform()
        plan = platform_floorplan(platform)
        scheduler = thermal_scheduler(bm1, platform, bm1_library, floorplan=plan)
        baseline = scheduler.run(BaselinePolicy())
        thermal = scheduler.run(ThermalPolicy())
        eval_base = evaluate_schedule(baseline, floorplan=plan)
        eval_thermal = evaluate_schedule(thermal, floorplan=plan)
        assert eval_thermal.avg_temperature < eval_base.avg_temperature
        assert eval_thermal.meets_deadline

    def test_benchmarks_meet_deadlines_on_platform(
        self, bm1, bm1_library, bm2, bm2_library
    ):
        platform = default_platform()
        for graph, library in ((bm1, bm1_library), (bm2, bm2_library)):
            for policy in (BaselinePolicy(), TaskEnergyPolicy()):
                schedule = schedule_graph(graph, platform, library, policy)
                assert schedule.meets_deadline
                schedule.validate(library)
