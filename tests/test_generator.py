"""Tests for the TGFF-style task-graph generator."""

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.generator import (
    GraphSpec,
    generate_task_graph,
    random_graph_spec,
)


class TestGraphSpec:
    def test_valid_spec(self):
        spec = GraphSpec("g", num_tasks=10, num_edges=12, deadline=400.0)
        assert spec.num_tasks == 10

    def test_too_few_edges_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", num_tasks=10, num_edges=8, deadline=400.0)

    def test_zero_tasks_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", num_tasks=0, num_edges=0, deadline=400.0)

    def test_bad_deadline_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", num_tasks=3, num_edges=2, deadline=0.0)

    def test_bad_widths_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 5, 10.0, min_width=3, max_width=2)
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 5, 10.0, min_width=0)

    def test_bad_data_range_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 5, 10.0, data_low=5.0, data_high=1.0)
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 5, 10.0, data_low=-1.0)

    def test_bad_type_count_rejected(self):
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 5, 10.0, num_task_types=0)


class TestGeneration:
    @pytest.mark.parametrize(
        "tasks,edges",
        [(1, 0), (2, 1), (5, 4), (10, 14), (19, 19), (35, 40), (51, 60)],
    )
    def test_exact_counts(self, tasks, edges):
        spec = GraphSpec("g", tasks, edges, 1000.0)
        graph = generate_task_graph(spec, seed=1)
        assert graph.num_tasks == tasks
        assert graph.num_edges == edges

    def test_result_is_valid_dag(self):
        graph = generate_task_graph(GraphSpec("g", 30, 40, 900.0), seed=7)
        graph.validate()  # raises on cycle/inconsistency

    def test_single_source(self):
        graph = generate_task_graph(GraphSpec("g", 25, 30, 900.0), seed=3)
        assert graph.sources() == ["t0"]

    def test_deadline_propagated(self):
        graph = generate_task_graph(GraphSpec("g", 5, 4, 777.0), seed=1)
        assert graph.deadline == 777.0

    def test_deterministic_given_seed(self):
        spec = GraphSpec("g", 20, 25, 800.0)
        a = generate_task_graph(spec, seed=11)
        b = generate_task_graph(spec, seed=11)
        assert [t.name for t in a] == [t.name for t in b]
        assert [(t.name, t.task_type) for t in a] == [
            (t.name, t.task_type) for t in b
        ]
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]
        assert [e.data for e in a.edges()] == [e.data for e in b.edges()]

    def test_different_seeds_differ(self):
        spec = GraphSpec("g", 20, 25, 800.0)
        a = generate_task_graph(spec, seed=1)
        b = generate_task_graph(spec, seed=2)
        assert [e.key for e in a.edges()] != [e.key for e in b.edges()]

    def test_task_types_within_pool(self):
        spec = GraphSpec("g", 30, 35, 900.0, num_task_types=4)
        graph = generate_task_graph(spec, seed=5)
        valid = {f"type{i}" for i in range(4)}
        assert {t.task_type for t in graph} <= valid

    def test_edge_data_in_range(self):
        spec = GraphSpec("g", 15, 20, 500.0, data_low=2.0, data_high=3.0)
        graph = generate_task_graph(spec, seed=9)
        for edge in graph.edges():
            assert 2.0 <= edge.data <= 3.0

    def test_impossible_density_rejected_by_spec(self):
        # a 5-task DAG has C(5,2)=10 distinct forward pairs; 11 edges are
        # impossible and the spec itself rejects them
        with pytest.raises(TaskGraphError):
            GraphSpec("g", 5, 11, 100.0)

    def test_dense_spec_falls_back_to_chain_layering(self):
        # 4 tasks, 6 edges = the complete DAG; only the chain layering can
        # host it, so the generator must fall back and still succeed
        graph = generate_task_graph(GraphSpec("g", 4, 6, 100.0), seed=1)
        assert graph.num_edges == 6
        graph.validate()

    def test_edges_go_to_deeper_levels(self):
        graph = generate_task_graph(GraphSpec("g", 30, 40, 900.0), seed=13)
        levels = graph.depth_levels()
        for edge in graph.edges():
            assert levels[edge.src] < levels[edge.dst]


class TestRandomSpec:
    def test_in_bounds(self):
        spec = random_graph_spec("r", seed=3, min_tasks=12, max_tasks=20)
        assert 12 <= spec.num_tasks <= 20
        assert spec.num_edges >= spec.num_tasks - 1

    def test_deterministic(self):
        assert random_graph_spec("r", seed=5) == random_graph_spec("r", seed=5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(TaskGraphError):
            random_graph_spec("r", seed=1, min_tasks=10, max_tasks=5)

    def test_generated_spec_is_generatable(self):
        spec = random_graph_spec("r", seed=8)
        graph = generate_task_graph(spec, seed=8)
        assert graph.num_tasks == spec.num_tasks
