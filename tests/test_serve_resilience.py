"""Serving under failure: client retries, circuit breaker, orphans,
degradation states, draining shutdown.

The client half pins the bounded-budget retry contract against a
scripted transport (no sockets, no sleeps); the daemon half drives a
real loopback daemon through injected connection resets and handler
exceptions and asserts the client absorbs them.
"""

import pytest

from repro.errors import ServeConnectionError, ServeError
from repro.flow import Flow, platform_spec, spec_hash
from repro.flow.spec import generated_source
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy, inject
from repro.results import ResultStore
from repro.serve import ServeClient, ServeDaemon, protocol

#: Zero-delay policy so retry tests run at full speed.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.0, max_delay_s=0.0)


def bm1_spec(**kwargs):
    return platform_spec("Bm1", policy="thermal", **kwargs)


def bad_spec():
    """Parses fine, fails at execution time (unknown policy) — the 422
    family the circuit breaker counts."""
    from repro.flow.spec import FlowSpec

    return FlowSpec.from_dict(
        {**bm1_spec().to_dict(), "policy": {"name": "nope"}}
    )


VARIABLE_KEYS = ("provenance", "timings", "diagnostics")


def comparable(record):
    trimmed = dict(record)
    for key in VARIABLE_KEYS:
        trimmed.pop(key, None)
    return trimmed


# ----------------------------------------------------------------------
# the client's retry budget, against a scripted transport
# ----------------------------------------------------------------------
class _ScriptedTransport:
    """Replaces ``ServeClient._request`` with a canned response list."""

    def __init__(self, client, script):
        self.script = list(script)
        self.calls = 0
        client._request = self  # bound-method shadowing on the instance

    def __call__(self, method, path, body=None):
        self.calls += 1
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


OK = (200, {"ok": True, "protocol": 1, "record": {"x": 1},
            "request_id": "req-1", "served_by": "w0", "timings": {}}, {})


def _client(sleeps):
    client = ServeClient("http://127.0.0.1:1", timeout_s=5.0,
                         max_retries=3, retry=FAST_RETRY)
    return client


@pytest.fixture()
def sleeps(monkeypatch):
    recorded = []
    monkeypatch.setattr("repro.serve.client.sleep_for", recorded.append)
    return recorded


def _error(status, kind):
    return (status, protocol.error_payload(kind, f"scripted {kind}", "req-x"),
            {})


class TestClientRetry:
    def test_transient_503_and_500_are_absorbed(self, sleeps):
        client = _client(sleeps)
        transport = _ScriptedTransport(client, [
            _error(503, "draining"), _error(500, "internal"), OK,
        ])
        payload = client.submit(bm1_spec(), store=False)
        assert payload["ok"]
        assert transport.calls == 3
        assert len(sleeps) == 2

    def test_connection_resets_are_absorbed(self, sleeps):
        client = _client(sleeps)
        transport = _ScriptedTransport(client, [
            ServeConnectionError("reset"), ServeConnectionError("refused"),
            OK,
        ])
        assert client.submit(bm1_spec(), store=False)["ok"]
        assert transport.calls == 3

    def test_budget_bounds_connection_retries(self, sleeps):
        client = _client(sleeps)
        _ScriptedTransport(client, [ServeConnectionError("down")] * 10)
        with pytest.raises(ServeConnectionError, match="down"):
            client.submit(bm1_spec(), store=False)
        # max_retries=3 → 4 attempts, 3 backoffs, not 10
        assert len(sleeps) == 3

    def test_budget_bounds_http_retries_then_raises_the_kind(self, sleeps):
        client = _client(sleeps)
        transport = _ScriptedTransport(client, [_error(503, "busy")] * 10)
        with pytest.raises(ServeError, match=r"\[busy\]"):
            client.submit(bm1_spec(), store=False)
        assert transport.calls == 4

    def test_422_is_never_retried(self, sleeps):
        client = _client(sleeps)
        transport = _ScriptedTransport(
            client, [_error(422, "SchedulingError")] * 2
        )
        with pytest.raises(ServeError, match=r"\[SchedulingError\]"):
            client.submit(bm1_spec(), store=False)
        assert transport.calls == 1
        assert sleeps == []

    def test_retry_after_hint_stretches_the_wait_but_is_capped(self, sleeps):
        client = _client(sleeps)
        script = [
            (429, protocol.error_payload("busy", "full", "r"),
             {"Retry-After": "2"}),
            (429, protocol.error_payload("busy", "full", "r"),
             {"Retry-After": "9999"}),
            OK,
        ]
        _ScriptedTransport(client, script)
        assert client.submit(bm1_spec(), store=False)["ok"]
        assert sleeps[0] == 2.0       # hint longer than 0-delay backoff
        assert sleeps[1] == 30.0      # absurd hints cap at 30s

    def test_zero_retries_means_one_attempt(self, sleeps):
        client = ServeClient("http://127.0.0.1:1", timeout_s=5.0,
                             max_retries=0)
        transport = _ScriptedTransport(client, [ServeConnectionError("x")])
        with pytest.raises(ServeConnectionError):
            client.submit(bm1_spec(), store=False)
        assert transport.calls == 1

    def test_default_policy_budget_tracks_max_retries(self):
        client = ServeClient("http://127.0.0.1:1", max_retries=5)
        assert client.retry.max_attempts == 6
        assert client.retry.jitter > 0

    def test_health_state_unreachable_when_nothing_answers(self):
        client = ServeClient("http://127.0.0.1:1", timeout_s=0.2)
        state, reasons = client.health_state()
        assert state == "unreachable"
        assert reasons and "cannot reach daemon" in reasons[0]


# ----------------------------------------------------------------------
# protocol: the degradation vocabulary
# ----------------------------------------------------------------------
class TestHealthPayload:
    def test_defaults_to_ok_with_no_reasons(self):
        payload = protocol.health_payload()
        assert payload["ok"] is True
        assert payload["state"] == "ok"
        assert payload["reasons"] == []

    def test_degraded_carries_reasons_but_stays_ok(self):
        # liveness probes must not kill a load-shedding daemon
        payload = protocol.health_payload("degraded", ("draining: bye",))
        assert payload["ok"] is True
        assert payload["state"] == "degraded"
        assert payload["reasons"] == ["draining: bye"]


# ----------------------------------------------------------------------
# the daemon, over real loopback HTTP, with injected faults
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _always_disarmed():
    from repro.resilience import disarm

    disarm()
    yield
    disarm()


class TestDaemonUnderFaults:
    def test_client_absorbs_reset_and_handler_exception(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.sleep_for", sleeps.append)
        plan = FaultPlan(faults=(
            FaultSpec(site="serve.connection-reset", ordinal=0),
            FaultSpec(site="serve.handler-exception", ordinal=0),
        ))
        with ServeDaemon(port=0, workers=1) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0,
                                 max_retries=3, retry=FAST_RETRY)
            spec = bm1_spec(weight=0.55)
            with inject(plan) as injector:
                payload = client.submit(spec, store=False)
            assert payload["ok"]
            assert len(injector.fired()) == 2
            assert len(sleeps) == 2  # one reset + one 500 absorbed
        local = Flow().run(spec).as_record(suite="serve").to_dict()
        assert comparable(payload["record"]) == comparable(local)

    def test_orphaned_timeout_completes_and_is_counted(self, tmp_path):
        heavy = platform_spec(
            "Bm1", policy="thermal",
            graph=generated_source("layered", tasks=120, seed=3), count=6,
        )
        with ServeDaemon(
            port=0, workers=1, store=tmp_path / "store",
            request_timeout_s=0.005,
        ) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0, max_retries=0)
            with pytest.raises(ServeError, match=r"\[timeout\]"):
                client.submit(heavy, suite="orphan-test")
            # the work was abandoned, not killed: it finishes and stores
            deadline_poll = 0
            while daemon.pool.orphan_completed == 0 and deadline_poll < 400:
                import time

                time.sleep(0.025)
                deadline_poll += 1
            assert daemon.pool.orphan_completed == 1
            assert daemon.stats()["timeouts"] == 1
        stored = ResultStore(tmp_path / "store").load(suite="orphan-test")
        assert len(stored) == 1
        record = list(stored)[0]
        assert record.provenance["orphaned_wait"] is True
        assert record.provenance["served_by"]


class TestCircuitBreaker:
    def test_failing_family_trips_healthy_family_survives(self):
        with ServeDaemon(
            port=0, workers=1, circuit_threshold=2, circuit_cooldown_s=60.0,
        ) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0, max_retries=0)
            bad = bad_spec()
            family = spec_hash(bad)
            for _ in range(2):
                with pytest.raises(ServeError, match=r"\[SchedulingError\]"):
                    client.submit(bad, store=False)
            # third request never reaches a worker
            with pytest.raises(ServeError, match=r"\[circuit-open\]"):
                client.submit(bad, store=False)
            assert daemon.stats()["circuit_rejections"] == 1
            assert daemon.stats()["circuits"]["circuits"][family][
                "state"
            ] == "open"
            # the healthy family is untouched
            assert client.submit(bm1_spec(), store=False)["ok"]
            state, reasons = client.health_state()
            assert state == "degraded"
            assert any("circuit-open" in reason for reason in reasons)

    def test_disabled_breaker_never_rejects(self):
        with ServeDaemon(port=0, workers=1, circuit_threshold=0) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0, max_retries=0)
            for _ in range(3):
                with pytest.raises(ServeError, match=r"\[SchedulingError\]"):
                    client.submit(bad_spec(), store=False)
            assert daemon.stats()["circuit_rejections"] == 0
            assert "circuits" not in daemon.stats()

    def test_handle_submit_policy_without_sockets(self):
        # workers run, HTTP loop never starts — handle_submit only
        daemon = ServeDaemon(
            port=0, workers=1, circuit_threshold=1, circuit_cooldown_s=60.0,
        )
        daemon.pool.start()
        try:
            raw = protocol.encode({"spec": bad_spec().to_dict(),
                                   "store": False})
            status, payload, _ = daemon.handle_submit(raw)
            assert status == 422
            status, payload, headers = daemon.handle_submit(raw)
            assert status == 503
            assert payload["error"]["kind"] == "circuit-open"
            assert int(headers["Retry-After"]) >= 1
        finally:
            daemon.pool.stop()
            daemon._http.server_close()


class TestDraining:
    def test_draining_daemon_rejects_new_work_with_503(self):
        with ServeDaemon(port=0, workers=1) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0, max_retries=0)
            assert client.submit(bm1_spec(), store=False)["ok"]
            daemon.begin_drain()
            assert daemon.draining
            with pytest.raises(ServeError, match=r"\[draining\]"):
                client.submit(bm1_spec(), store=False)
            assert daemon.stats()["drain_rejections"] == 1
            state, reasons = client.health_state()
            assert state == "degraded"
            assert any("draining" in reason for reason in reasons)

    def test_shutdown_implies_drain(self):
        daemon = ServeDaemon(port=0, workers=1)
        with daemon as running:
            client = ServeClient(running.url, timeout_s=60.0)
            assert client.health()
        assert daemon.draining

    def test_healthz_reports_ok_when_healthy(self):
        with ServeDaemon(port=0, workers=1) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0)
            assert client.health_state() == ("ok", ())
            assert client.health()
