"""Tests for the steady-state solver."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal.network import ThermalNetwork
from repro.thermal.steady import SteadyStateSolver


def star_network(ambient=45.0, g_amb=0.5, g_link=1.0):
    """Two nodes: a--b, a--ambient."""
    network = ThermalNetwork(ambient)
    network.add_node("a", capacitance=1.0, ambient_conductance=g_amb)
    network.add_node("b", capacitance=1.0)
    network.connect("a", "b", g_link)
    return network


class TestAnalyticSolutions:
    def test_single_resistor(self):
        # one node to ambient through R = 2 K/W, 10 W -> rise 20 K
        network = ThermalNetwork(45.0)
        network.add_node("x", ambient_conductance=0.5)
        solver = SteadyStateSolver(network)
        temps = solver.temperatures({"x": 10.0})
        assert temps["x"] == pytest.approx(45.0 + 20.0)

    def test_series_chain(self):
        # b --(1 W/K)-- a --(0.5 W/K)-- ambient; 4 W into b
        solver = SteadyStateSolver(star_network())
        temps = solver.temperatures({"b": 4.0})
        assert temps["a"] == pytest.approx(45.0 + 8.0)   # 4 W over 2 K/W
        assert temps["b"] == pytest.approx(45.0 + 12.0)  # + 4 W over 1 K/W

    def test_superposition(self):
        solver = SteadyStateSolver(star_network())
        t1 = solver.temperatures({"a": 3.0})
        t2 = solver.temperatures({"b": 5.0})
        both = solver.temperatures({"a": 3.0, "b": 5.0})
        for name in ("a", "b"):
            rise = (t1[name] - 45.0) + (t2[name] - 45.0)
            assert both[name] == pytest.approx(45.0 + rise)

    def test_zero_power_is_ambient(self):
        solver = SteadyStateSolver(star_network())
        temps = solver.temperatures({})
        assert temps["a"] == pytest.approx(45.0)
        assert temps["b"] == pytest.approx(45.0)


class TestSolverMechanics:
    def test_solve_count_increments(self):
        solver = SteadyStateSolver(star_network())
        assert solver.solve_count == 0
        solver.temperatures({"a": 1.0})
        solver.temperatures({"b": 1.0})
        assert solver.solve_count == 2

    def test_wrong_shape_rejected(self):
        solver = SteadyStateSolver(star_network())
        with pytest.raises(ThermalError):
            solver.solve_rise(np.zeros(5))

    def test_ungrounded_network_rejected(self):
        network = ThermalNetwork(45.0)
        network.add_node("x")
        from repro.errors import SingularNetworkError

        with pytest.raises(SingularNetworkError):
            SteadyStateSolver(network)

    def test_monotone_in_power(self):
        solver = SteadyStateSolver(star_network())
        low = solver.temperatures({"b": 1.0})["b"]
        high = solver.temperatures({"b": 2.0})["b"]
        assert high > low
