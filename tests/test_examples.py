"""Smoke tests: every shipped example must run cleanly end to end.

These protect deliverable (b): the examples exercise the public API on
realistic scenarios, so a breaking API change must fail the test suite,
not a user.  Each example runs in a subprocess with the repository's
interpreter and must exit 0 without writing to stderr (warnings filtered).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, marker expected in stdout)
EXAMPLES = [
    ("quickstart.py", "thermal"),
    ("custom_workload.py", "makespan"),
    ("cosynthesis_flow.py", "thermal-aware co-synthesis"),
    ("hotspot_map.py", "thermally even"),
    ("transient_profile.py", "transient peak"),
    ("pareto_explorer.py", "Pareto"),
    ("flow_sweep.py", "cache hits"),
    ("leakage_reliability.py", "electromigration"),
    ("conditional_graph.py", "scenario"),
]


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    listed = {name for name, _ in EXAMPLES}
    assert on_disk == listed, "new examples must be added to this test"


@pytest.mark.parametrize("script,marker", EXAMPLES)
def test_example_runs(script, marker):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker.lower() in completed.stdout.lower(), (
        f"{script} output lacks {marker!r}"
    )
