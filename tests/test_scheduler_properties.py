"""Property-based tests for the ASP scheduler.

Invariants: for any generated workload, any policy, and any architecture
from the catalogue, the produced schedule is complete, precedence-correct,
mutually exclusive per PE, and WCET/WCPC-faithful.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import (
    BaselinePolicy,
    CumulativePowerPolicy,
    TaskEnergyPolicy,
    TaskPowerPolicy,
    ThermalPolicy,
)
from repro.core.scheduler import ListScheduler
from repro.core.thermal_loop import thermal_scheduler
from repro.library.pe import Architecture
from repro.library.presets import default_catalogue, generate_technology_library
from repro.taskgraph.generator import GraphSpec, generate_task_graph

CATALOGUE = default_catalogue()
POLICIES = [
    BaselinePolicy(),
    TaskPowerPolicy(),
    CumulativePowerPolicy(),
    TaskEnergyPolicy(),
]


@st.composite
def workloads(draw):
    num_tasks = draw(st.integers(min_value=2, max_value=25))
    extra = draw(st.integers(min_value=0, max_value=max(0, num_tasks // 3)))
    spec = GraphSpec(
        "prop",
        num_tasks,
        num_tasks - 1 + extra,
        deadline=float(num_tasks * 200),
        num_task_types=draw(st.integers(min_value=1, max_value=6)),
    )
    graph_seed = draw(st.integers(min_value=0, max_value=2**31))
    lib_seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = generate_task_graph(spec, graph_seed)
    task_types = sorted({t.task_type for t in graph})
    library = generate_technology_library(task_types, seed=lib_seed)
    return graph, library


@st.composite
def architectures(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    # always include a general-purpose core so every workload is feasible
    arch = Architecture("prop-arch")
    arch.add_instance(CATALOGUE[0])
    for _ in range(count - 1):
        arch.add_instance(draw(st.sampled_from(CATALOGUE[:4])))  # GP types only
    return arch


@given(
    workload=workloads(),
    arch=architectures(),
    policy_index=st.integers(min_value=0, max_value=len(POLICIES) - 1),
)
@settings(max_examples=30, deadline=None)
def test_schedule_always_valid(workload, arch, policy_index):
    graph, library = workload
    scheduler = ListScheduler(graph, arch, library)
    schedule = scheduler.run(POLICIES[policy_index])
    schedule.validate(library)
    assert len(schedule) == graph.num_tasks


@given(workload=workloads(), arch=architectures())
@settings(max_examples=15, deadline=None)
def test_thermal_schedule_always_valid(workload, arch):
    graph, library = workload
    scheduler = thermal_scheduler(graph, arch, library)
    schedule = scheduler.run(ThermalPolicy())
    schedule.validate(library)


@given(workload=workloads(), arch=architectures())
@settings(max_examples=20, deadline=None)
def test_makespan_at_least_critical_path_lower_bound(workload, arch):
    """Makespan can never beat the min-WCET critical path."""
    graph, library = workload
    scheduler = ListScheduler(graph, arch, library)
    schedule = scheduler.run()
    lower_bound = graph.critical_path_length(library.min_wcet)
    assert schedule.makespan >= lower_bound - 1e-9


@given(workload=workloads(), arch=architectures())
@settings(max_examples=20, deadline=None)
def test_single_pe_makespan_equals_serial_sum(workload, arch):
    """On one PE the makespan is exactly the sum of that PE's WCETs."""
    graph, library = workload
    solo = Architecture("solo")
    solo.add_instance(CATALOGUE[0])
    scheduler = ListScheduler(graph, solo, library)
    schedule = scheduler.run()
    expected = sum(library.wcet(task, CATALOGUE[0]) for task in graph)
    assert schedule.makespan == pytest.approx(expected)


@given(workload=workloads())
@settings(max_examples=15, deadline=None)
def test_more_pes_never_hurt_makespan(workload):
    """Adding an identical PE cannot lengthen the baseline schedule.

    (List scheduling anomalies exist for *pathological priority functions*;
    with SC priorities and identical PEs the greedy earliest-start choice
    means each added identical PE weakly dominates.)
    """
    graph, library = workload
    small = Architecture("p2")
    for _ in range(2):
        small.add_instance(CATALOGUE[0])
    large = Architecture("p4")
    for _ in range(4):
        large.add_instance(CATALOGUE[0])
    mk_small = ListScheduler(graph, small, library).run().makespan
    mk_large = ListScheduler(graph, large, library).run().makespan
    assert mk_large <= mk_small + 1e-9
