"""Cross-module integration tests: the full pipeline, end to end."""

import pytest

from repro import (
    BaselinePolicy,
    GraphSpec,
    HotSpotModel,
    TaskEnergyPolicy,
    ThermalPolicy,
    default_platform,
    evaluate_schedule,
    generate_task_graph,
    generate_technology_library,
    platform_flow,
    platform_floorplan,
    schedule_graph,
)
from repro.analysis.compare import spearman_rank_correlation
from repro.thermal.gridmodel import GridModel


@pytest.fixture(scope="module")
def custom_workload():
    """A workload built through the public API only (no presets)."""
    spec = GraphSpec("custom", num_tasks=24, num_edges=29, deadline=1400.0)
    graph = generate_task_graph(spec, seed=77)
    task_types = sorted({t.task_type for t in graph})
    library = generate_technology_library(task_types, seed=78)
    return graph, library


class TestFullPipeline:
    def test_schedule_trace_transient_chain(self, custom_workload):
        """Schedule -> power trace -> transient replay, all consistent."""
        graph, library = custom_workload
        platform = default_platform()
        schedule = schedule_graph(graph, platform, library)
        schedule.validate(library)

        trace = schedule.power_trace()
        assert trace.span == pytest.approx(schedule.makespan)
        assert sum(trace.average_powers().values()) == pytest.approx(
            schedule.total_average_power
        )

        plan = platform_floorplan(platform)
        model = HotSpotModel(plan)
        # replay at 1 time unit = 1 ms; long tail so it settles
        segments = trace.segments(time_scale=1e-3)
        result = model.transient(segments, dt=0.05)
        assert result.times[-1] == pytest.approx(
            schedule.makespan * 1e-3, rel=1e-6
        )
        peak = result.peak_of(model.block_names)
        steady_peak = model.peak_temperature(schedule.average_powers())
        # a transient replay of bursty power exceeds the average-power
        # steady state at the hot moments, but not absurdly
        assert peak < steady_peak + 40.0
        assert peak > model.package.ambient_c

    def test_policies_rank_consistently_between_models(self, custom_workload):
        """Block-model policy ranking agrees with the grid model's."""
        graph, library = custom_workload
        platform = default_platform()
        plan = platform_floorplan(platform)
        grid = GridModel(plan, rows=4, cols=16)

        block_peaks, grid_peaks = [], []
        for policy in (BaselinePolicy(), TaskEnergyPolicy(), ThermalPolicy()):
            result = platform_flow(graph, library, policy)
            powers = result.schedule.average_powers()
            block_peaks.append(result.evaluation.max_temperature)
            grid_peaks.append(max(grid.block_temperatures(powers).values()))
        assert spearman_rank_correlation(block_peaks, grid_peaks) > 0.4

    def test_evaluation_matches_scheduler_objective(self, custom_workload):
        """What the thermal policy optimised is what evaluation reports."""
        graph, library = custom_workload
        result = platform_flow(graph, library, ThermalPolicy())
        direct = evaluate_schedule(
            result.schedule, floorplan=result.floorplan
        )
        assert direct.avg_temperature == pytest.approx(
            result.evaluation.avg_temperature
        )

    def test_deadline_tightening_eventually_infeasible(self, custom_workload):
        """Tightening deadlines flips meets_deadline exactly once."""
        graph, library = custom_workload
        platform = default_platform()
        schedule = schedule_graph(graph, platform, library)
        feasible_at = schedule.makespan
        loose = graph.with_deadline(feasible_at * 1.01)
        tight = graph.with_deadline(feasible_at * 0.5)
        assert schedule_graph(loose, platform, library).meets_deadline
        assert not schedule_graph(tight, platform, library).meets_deadline

    def test_thermal_policy_flattens_spatial_gradient(self, custom_workload):
        """The 'thermally even distribution' claim, measured on the grid."""
        graph, library = custom_workload
        baseline = platform_flow(graph, library, BaselinePolicy())
        thermal = platform_flow(graph, library, ThermalPolicy())

        def spread(result):
            temps = result.evaluation.pe_temperatures
            return max(temps.values()) - min(temps.values())

        assert spread(thermal) <= spread(baseline) + 1e-9
