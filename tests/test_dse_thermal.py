"""Property tests for the DSE incremental thermal evaluator.

The evaluator's contract (ISSUE 8): every candidate answered through the
Woodbury low-rank correction agrees with a full network rebuild to
≤1e-9 °C, and every fallback (changed block set, excessive rank,
ill-conditioned update) routes to the exact path and is counted.  These
tests are what licenses the DSE strategies to screen thousands of
placement mutations without refactorising.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.thermal import IncrementalThermalEvaluator
from repro.floorplan.geometry import Floorplan
from repro.thermal.blockmodel import (
    _diff_edge_maps,
    _edge_conductances,
    block_network_delta,
    build_block_network,
)
from repro.thermal.package import default_package
from repro.thermal.query import ThermalQueryEngine

TOL = 1e-9


def abutting_grid(side: int, pitch: float = 2.5, loose: str = "") -> Floorplan:
    """A fully-abutting *side*×*side* grid; *loose* names a block shrunk
    to 2.3×2.3 so it can slide without overlapping its neighbours."""
    plan = Floorplan()
    for row in range(side):
        for col in range(side):
            name = f"pe{row * side + col}"
            size = 2.3 if name == loose else pitch
            plan.place(name, col * pitch, row * pitch, size, size)
    return plan


def with_move(base: Floorplan, name: str, dx: float, dy: float) -> Floorplan:
    plan = Floorplan()
    for block in base.blocks():
        r = block.rect
        if block.name == name:
            plan.place(block.name, r.x + dx, r.y + dy, r.w, r.h)
        else:
            plan.place(block.name, r.x, r.y, r.w, r.h)
    return plan


def full_peak(plan: Floorplan, powers: np.ndarray) -> float:
    network = build_block_network(plan, default_package())
    engine = ThermalQueryEngine.from_network(network, plan.block_names())
    return float(engine.block_temperatures_vector(powers).max())


# ----------------------------------------------------------------------
# incremental vs. full rebuild agreement
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    loose=st.integers(min_value=0, max_value=8),
    dx=st.floats(min_value=0.0, max_value=0.18),
    dy=st.floats(min_value=0.0, max_value=0.18),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_single_move_matches_full_rebuild(loose, dx, dy, seed):
    """Woodbury-corrected temperatures == full rebuild, ≤1e-9 °C.

    The shrunken block only has slack on its +x/+y side, so moves are
    non-negative; which path serves the query (correction, unchanged
    fork, or rank-limit rebuild) is the evaluator's business — the
    contract under test is exactness on every one of them.
    """
    name = f"pe{loose}"
    anchor = abutting_grid(3, loose=name)
    evaluator = IncrementalThermalEvaluator(anchor)
    rng = np.random.default_rng(seed)
    powers = rng.uniform(0.5, 6.0, size=len(anchor))

    candidate = with_move(anchor, name, dx, dy)
    engine = evaluator.engine_for(candidate)
    got = float(engine.block_temperatures_vector(powers).max())
    assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)
    assert evaluator.stats["conditioning_fallbacks"] == 0


@settings(max_examples=10, deadline=None)
@given(
    moves=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.15),
            st.floats(min_value=0.0, max_value=0.15),
        ),
        min_size=1,
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_move_sequences_match_full_rebuild(moves, seed):
    """A whole mutation trajectory stays ≤1e-9 against direct solves —
    each candidate is corrected from the SAME anchor factorisation."""
    anchor = abutting_grid(4, loose="pe5")
    evaluator = IncrementalThermalEvaluator(anchor)
    rng = np.random.default_rng(seed)
    powers = rng.uniform(0.5, 6.0, size=len(anchor))

    for dx, dy in moves:
        candidate = with_move(anchor, "pe5", dx, dy)
        got = evaluator.peak_temperature(candidate, powers=powers)
        assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)
    assert evaluator.evaluations() == len(moves)
    assert evaluator.stats["full_rebuilds"] == 0
    assert evaluator.stats["conditioning_fallbacks"] == 0


def test_boundary_move_changes_overhang_and_still_agrees():
    """Sliding a block past the die bbox changes the spreader overhang:
    the delta falls back to a full edge-map diff, yet stays exact."""
    anchor = abutting_grid(3, loose="pe8")  # corner block, free to slide out
    evaluator = IncrementalThermalEvaluator(anchor)
    candidate = with_move(anchor, "pe8", 0.4, 0.0)  # grows the bbox
    assert candidate.die_size()[0] > anchor.die_size()[0]
    powers = np.full(len(anchor), 2.0)
    got = evaluator.peak_temperature(candidate, powers=powers)
    assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)


# ----------------------------------------------------------------------
# the moved-block fast delta
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    loose=st.integers(min_value=0, max_value=15),
    dx=st.floats(min_value=0.0, max_value=0.18),
    dy=st.floats(min_value=0.0, max_value=0.18),
)
def test_fast_delta_matches_full_edge_map_diff(loose, dx, dy):
    """block_network_delta's O(moved·n) path == the brute-force diff of
    two complete edge maps, key for key."""
    name = f"pe{loose}"
    anchor = abutting_grid(4, loose=name)
    candidate = with_move(anchor, name, dx, dy)
    package = default_package()

    fast = block_network_delta(anchor, candidate, package)
    slow = _diff_edge_maps(
        _edge_conductances(anchor, package),
        _edge_conductances(candidate, package),
    )
    assert fast is not None
    assert set(fast) == set(slow)
    for key, change in slow.items():
        assert fast[key] == pytest.approx(change, rel=1e-9, abs=1e-12)


def test_unmoved_plan_yields_empty_delta():
    anchor = abutting_grid(3)
    copy = with_move(anchor, "pe0", 0.0, 0.0)
    assert block_network_delta(anchor, copy, default_package()) == {}


def test_changed_block_set_yields_none():
    anchor = abutting_grid(2)
    other = Floorplan()
    other.place("alone", 0.0, 0.0, 5.0, 5.0)
    assert block_network_delta(anchor, other, default_package()) is None


# ----------------------------------------------------------------------
# fallback routing and accounting
# ----------------------------------------------------------------------
def test_interior_move_is_served_incrementally():
    """The bench fixture shape: one shrunken interior block sliding a
    fraction of a pitch MUST take the low-rank path, not a rebuild."""
    anchor = abutting_grid(4, loose="pe5")
    evaluator = IncrementalThermalEvaluator(anchor)
    candidate = with_move(anchor, "pe5", 0.1, 0.05)
    powers = np.full(len(anchor), 2.0)
    got = evaluator.peak_temperature(candidate, powers=powers)
    assert evaluator.stats["incremental"] == 1
    assert evaluator.stats["full_rebuilds"] == 0
    assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)


def test_unchanged_candidate_forks_base_engine():
    anchor = abutting_grid(2)
    evaluator = IncrementalThermalEvaluator(anchor)
    engine = evaluator.engine_for(with_move(anchor, "pe0", 0.0, 0.0))
    assert evaluator.stats["unchanged"] == 1
    powers = np.full(len(anchor), 1.0)
    assert float(
        engine.block_temperatures_vector(powers).max()
    ) == pytest.approx(full_peak(anchor, powers), abs=TOL)


def test_changed_block_set_routes_to_full_rebuild():
    anchor = abutting_grid(2)
    evaluator = IncrementalThermalEvaluator(anchor)
    bigger = abutting_grid(3, loose="pe4")
    powers = np.full(len(bigger), 1.5)
    got = evaluator.peak_temperature(bigger, powers=powers)
    assert evaluator.stats["full_rebuilds"] == 1
    assert evaluator.stats["incremental"] == 0
    assert got == pytest.approx(full_peak(bigger, powers), abs=TOL)


def test_rank_limit_routes_to_full_rebuild():
    anchor = abutting_grid(4, loose="pe5")
    evaluator = IncrementalThermalEvaluator(anchor, rank_limit=0)
    candidate = with_move(anchor, "pe5", 0.1, 0.05)
    powers = np.full(len(anchor), 2.0)
    got = evaluator.peak_temperature(candidate, powers=powers)
    assert evaluator.stats["full_rebuilds"] == 1
    assert evaluator.stats["incremental"] == 0
    assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)


def test_conditioning_fallback_is_counted_and_exact():
    """An impossible rcond floor forces IllConditionedUpdateError on
    every correction; the evaluator must rebuild and stay exact."""
    anchor = abutting_grid(4, loose="pe5")
    evaluator = IncrementalThermalEvaluator(anchor, rcond_limit=1.1)
    candidate = with_move(anchor, "pe5", 0.1, 0.05)
    powers = np.full(len(anchor), 2.0)
    got = evaluator.peak_temperature(candidate, powers=powers)
    assert evaluator.stats["conditioning_fallbacks"] == 1
    assert evaluator.stats["incremental"] == 0
    assert got == pytest.approx(full_peak(candidate, powers), abs=TOL)


def test_stats_partition_the_evaluation_count():
    anchor = abutting_grid(4, loose="pe5")
    evaluator = IncrementalThermalEvaluator(anchor)
    evaluator.peak_temperature(with_move(anchor, "pe5", 0.1, 0.0))
    evaluator.peak_temperature(with_move(anchor, "pe5", 0.0, 0.0))
    evaluator.peak_temperature(abutting_grid(2))
    assert evaluator.stats == {
        "incremental": 1,
        "unchanged": 1,
        "full_rebuilds": 1,
        "conditioning_fallbacks": 0,
    }
    assert evaluator.evaluations() == 3
