"""Tests for transient thermal simulation."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal.network import ThermalNetwork
from repro.thermal.transient import STEPPERS, TransientSimulator


def rc_network(resistance=2.0, capacitance=3.0, ambient=45.0):
    """Single RC node: tau = R*C."""
    network = ThermalNetwork(ambient)
    network.add_node("x", capacitance=capacitance, ambient_conductance=1.0 / resistance)
    return network


class TestAgainstAnalyticRC:
    @pytest.mark.parametrize("stepper", STEPPERS)
    def test_step_response(self, stepper):
        """T(t) = T_inf (1 - exp(-t/tau)) for a power step on one RC node."""
        R, C, P = 2.0, 3.0, 10.0
        tau = R * C
        simulator = TransientSimulator(rc_network(R, C), stepper)
        result = simulator.run([(3.0 * tau, {"x": P})], dt=tau / 200.0)
        expected = P * R * (1.0 - np.exp(-result.times / tau))
        measured = result.node_series("x") - 45.0
        assert np.max(np.abs(measured - expected)) < 0.05 * P * R

    @pytest.mark.parametrize("stepper", STEPPERS)
    def test_cooldown(self, stepper):
        """After the power turns off the node decays toward ambient."""
        simulator = TransientSimulator(rc_network(), stepper)
        result = simulator.run(
            [(20.0, {"x": 10.0}), (60.0, {})], dt=0.1
        )
        assert result.node_series("x")[-1] == pytest.approx(45.0, abs=0.2)

    def test_exponential_stepper_is_exact_per_step(self):
        """The expm stepper matches the closed form even with huge steps."""
        R, C, P = 2.0, 3.0, 10.0
        tau = R * C
        simulator = TransientSimulator(rc_network(R, C), "exponential")
        result = simulator.run([(tau, {"x": P})], dt=tau)  # ONE step
        expected = P * R * (1.0 - np.exp(-1.0))
        assert result.node_series("x")[-1] - 45.0 == pytest.approx(expected, rel=1e-9)


class TestConvergenceToSteadyState:
    def test_long_run_matches_steady_solver(self, two_block_plan):
        from repro.thermal.blockmodel import build_block_network
        from repro.thermal.steady import SteadyStateSolver

        network = build_block_network(two_block_plan)
        steady = SteadyStateSolver(network).temperatures({"left": 8.0})
        simulator = TransientSimulator(network)
        result = simulator.run([(2000.0, {"left": 8.0})], dt=5.0)
        final = result.final()
        for name in network.node_names():
            assert final[name] == pytest.approx(steady[name], abs=0.3)


class TestMechanics:
    def test_requires_positive_capacitance(self):
        network = ThermalNetwork(45.0)
        network.add_node("x", capacitance=0.0, ambient_conductance=1.0)
        with pytest.raises(ThermalError):
            TransientSimulator(network)

    def test_unknown_stepper_rejected(self):
        with pytest.raises(ThermalError):
            TransientSimulator(rc_network(), "rk4")

    def test_empty_segments_rejected(self):
        simulator = TransientSimulator(rc_network())
        with pytest.raises(ThermalError):
            simulator.run([], dt=0.1)

    def test_zero_duration_segment_skipped(self):
        simulator = TransientSimulator(rc_network())
        result = simulator.run([(0.0, {"x": 5.0}), (1.0, {})], dt=0.5)
        assert result.times[-1] == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        simulator = TransientSimulator(rc_network())
        with pytest.raises(ThermalError):
            simulator.run([(-1.0, {})], dt=0.5)

    def test_bad_dt_rejected(self):
        simulator = TransientSimulator(rc_network())
        with pytest.raises(ThermalError):
            simulator.run([(1.0, {})], dt=0.0)

    def test_initial_condition_respected(self):
        simulator = TransientSimulator(rc_network())
        result = simulator.run([(0.001, {})], dt=0.001, initial={"x": 80.0})
        assert result.temperatures[0, 0] == pytest.approx(80.0)

    def test_result_accessors(self):
        simulator = TransientSimulator(rc_network())
        result = simulator.run([(1.0, {"x": 5.0})], dt=0.25)
        assert result.peak() >= 45.0
        assert result.peak_of(["x"]) == result.peak()
        with pytest.raises(ThermalError):
            result.node_series("ghost")

    def test_times_strictly_increasing(self):
        simulator = TransientSimulator(rc_network())
        result = simulator.run([(1.0, {"x": 5.0}), (0.7, {})], dt=0.3)
        assert (np.diff(result.times) > 0).all()
