"""Tests for the Schedule record type."""

import pytest

from repro.core.schedule import Assignment, Schedule
from repro.errors import SchedulingError
from repro.library.pe import Architecture, PEType
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def arch():
    arch = Architecture("two-pe")
    pe_type = PEType("core", 6.0, 6.0, idle_power=0.1)
    arch.add_instance(pe_type)
    arch.add_instance(pe_type)
    return arch


@pytest.fixture
def graph():
    graph = TaskGraph("g", deadline=100.0)
    graph.add("a", "t0")
    graph.add("b", "t0")
    graph.add("c", "t0")
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    return graph


@pytest.fixture
def schedule(graph, arch):
    return Schedule(
        graph,
        arch,
        [
            Assignment("a", "pe0", 0.0, 20.0, power=5.0),
            Assignment("b", "pe0", 20.0, 50.0, power=4.0),
            Assignment("c", "pe1", 20.0, 60.0, power=3.0),
        ],
        policy_name="test",
    )


class TestAssignment:
    def test_derived_fields(self):
        a = Assignment("t", "pe", 10.0, 25.0, power=4.0)
        assert a.duration == 15.0
        assert a.energy == pytest.approx(60.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(SchedulingError):
            Assignment("t", "pe", 10.0, 10.0, 1.0)
        with pytest.raises(SchedulingError):
            Assignment("t", "pe", -1.0, 10.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(SchedulingError):
            Assignment("t", "pe", 0.0, 10.0, -1.0)


class TestScheduleMetrics:
    def test_makespan(self, schedule):
        assert schedule.makespan == 60.0

    def test_deadline_and_slack(self, schedule):
        assert schedule.meets_deadline
        assert schedule.slack == pytest.approx(40.0)

    def test_total_energy(self, schedule):
        assert schedule.total_energy == pytest.approx(100 + 120 + 120)

    def test_pe_energy_zero_filled(self, schedule):
        energy = schedule.pe_energy()
        assert energy["pe0"] == pytest.approx(220.0)
        assert energy["pe1"] == pytest.approx(120.0)

    def test_pe_busy_time(self, schedule):
        busy = schedule.pe_busy_time()
        assert busy == {"pe0": 50.0, "pe1": 40.0}

    def test_pe_task_counts(self, schedule):
        assert schedule.pe_task_counts() == {"pe0": 2, "pe1": 1}

    def test_average_powers(self, schedule):
        powers = schedule.average_powers()
        assert powers["pe0"] == pytest.approx(220.0 / 60.0 + 0.1)
        assert powers["pe1"] == pytest.approx(120.0 / 60.0 + 0.1)

    def test_average_powers_without_idle(self, schedule):
        powers = schedule.average_powers(include_idle=False)
        assert powers["pe0"] == pytest.approx(220.0 / 60.0)

    def test_total_average_power(self, schedule):
        assert schedule.total_average_power == pytest.approx(
            sum(schedule.average_powers().values())
        )

    def test_load_balance(self, schedule):
        assert schedule.load_balance() == pytest.approx(50.0 / 45.0)

    def test_empty_schedule(self, graph, arch):
        empty = Schedule(graph, arch, [])
        assert empty.makespan == 0.0
        with pytest.raises(SchedulingError):
            empty.average_powers()


class TestScheduleAccess:
    def test_assignment_lookup(self, schedule):
        assert schedule.assignment("a").pe == "pe0"
        with pytest.raises(SchedulingError):
            schedule.assignment("ghost")

    def test_assignments_sorted_by_start(self, schedule):
        starts = [a.start for a in schedule.assignments()]
        assert starts == sorted(starts)

    def test_pe_assignments(self, schedule):
        on_pe0 = schedule.pe_assignments("pe0")
        assert [a.task for a in on_pe0] == ["a", "b"]

    def test_duplicate_task_rejected(self, graph, arch):
        with pytest.raises(SchedulingError):
            Schedule(
                graph,
                arch,
                [
                    Assignment("a", "pe0", 0, 1, 1.0),
                    Assignment("a", "pe1", 0, 1, 1.0),
                ],
            )


class TestExports:
    def test_power_intervals(self, schedule):
        intervals = schedule.power_intervals()
        assert (0.0, 20.0, "pe0", 5.0) in intervals
        assert len(intervals) == 3

    def test_power_trace_span_is_makespan(self, schedule):
        trace = schedule.power_trace()
        assert trace.span == pytest.approx(60.0)

    def test_power_trace_energy_matches(self, schedule):
        trace = schedule.power_trace(include_idle=False)
        assert trace.total_energy() == pytest.approx(schedule.total_energy)


class TestValidation:
    def test_valid_schedule_passes(self, schedule):
        schedule.validate()

    def test_missing_task_detected(self, graph, arch):
        partial = Schedule(graph, arch, [Assignment("a", "pe0", 0, 10, 1.0)])
        with pytest.raises(SchedulingError, match="unscheduled"):
            partial.validate()

    def test_unknown_task_detected(self, graph, arch):
        bogus = Schedule(
            graph,
            arch,
            [
                Assignment("a", "pe0", 0, 10, 1.0),
                Assignment("b", "pe0", 10, 20, 1.0),
                Assignment("c", "pe1", 10, 20, 1.0),
                Assignment("zzz", "pe1", 20, 30, 1.0),
            ],
        )
        with pytest.raises(SchedulingError, match="unknown tasks"):
            bogus.validate()

    def test_overlap_detected(self, graph, arch):
        clashing = Schedule(
            graph,
            arch,
            [
                Assignment("a", "pe0", 0, 20, 1.0),
                Assignment("b", "pe0", 10, 30, 1.0),  # overlaps a on pe0
                Assignment("c", "pe1", 20, 30, 1.0),
            ],
        )
        with pytest.raises(SchedulingError, match="overlap"):
            clashing.validate()

    def test_precedence_violation_detected(self, graph, arch):
        wrong = Schedule(
            graph,
            arch,
            [
                Assignment("a", "pe0", 10, 30, 1.0),
                Assignment("b", "pe1", 0, 10, 1.0),  # starts before a ends
                Assignment("c", "pe0", 30, 40, 1.0),
            ],
        )
        with pytest.raises(SchedulingError, match="precedence"):
            wrong.validate()

    def test_library_mismatch_detected(self, graph, arch):
        from repro.library.technology import TechnologyLibrary

        library = TechnologyLibrary()
        library.add_entry("t0", "core", wcet=20.0, wcpc=5.0)
        good = Schedule(
            graph,
            arch,
            [
                Assignment("a", "pe0", 0, 20, 5.0),
                Assignment("b", "pe0", 20, 40, 5.0),
                Assignment("c", "pe1", 20, 40, 5.0),
            ],
        )
        good.validate(library)  # durations/powers match
        bad = Schedule(
            graph,
            arch,
            [
                Assignment("a", "pe0", 0, 25, 5.0),  # duration != WCET
                Assignment("b", "pe0", 25, 45, 5.0),
                Assignment("c", "pe1", 25, 45, 5.0),
            ],
        )
        with pytest.raises(SchedulingError, match="WCET"):
            bad.validate(library)
