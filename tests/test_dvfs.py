"""Tests for the DVFS slack-reclamation extension."""

import pytest

from repro.core.heuristics import BaselinePolicy
from repro.core.scheduler import schedule_graph
from repro.errors import SchedulingError
from repro.extensions.dvfs import (
    DEFAULT_LEVELS,
    DVFSLevel,
    reclaim_slack,
    retime_schedule,
)
from repro.library.presets import default_platform


@pytest.fixture
def bm1_schedule(bm1, bm1_library):
    return schedule_graph(bm1, default_platform(), bm1_library, BaselinePolicy())


class TestDVFSLevel:
    def test_scales(self):
        level = DVFSLevel("half", frequency=0.5, voltage=0.6)
        assert level.time_scale == pytest.approx(2.0)
        assert level.power_scale == pytest.approx(0.5 * 0.36)
        assert level.energy_scale == pytest.approx(0.36)

    def test_nominal_scales_are_identity(self):
        nominal = DEFAULT_LEVELS[0]
        assert nominal.time_scale == 1.0
        assert nominal.power_scale == 1.0

    @pytest.mark.parametrize("freq,volt", [(0.0, 1.0), (1.5, 1.0), (1.0, 0.0), (1.0, 1.2)])
    def test_invalid_points_rejected(self, freq, volt):
        with pytest.raises(SchedulingError):
            DVFSLevel("bad", frequency=freq, voltage=volt)

    def test_default_ladder_ordered(self):
        times = [lvl.time_scale for lvl in DEFAULT_LEVELS]
        energies = [lvl.energy_scale for lvl in DEFAULT_LEVELS]
        assert times == sorted(times)
        assert energies == sorted(energies, reverse=True)


class TestRetime:
    def test_identity_retiming_preserves_times(self, bm1_schedule):
        durations = {a.task: a.duration for a in bm1_schedule}
        powers = {a.task: a.power for a in bm1_schedule}
        retimed = retime_schedule(bm1_schedule, durations, powers)
        assert retimed.makespan == pytest.approx(bm1_schedule.makespan)
        for assignment in bm1_schedule:
            other = retimed.assignment(assignment.task)
            assert other.pe == assignment.pe
            # identity retiming left-compacts, so starts can only move earlier
            assert other.start <= assignment.start + 1e-9

    def test_retimed_schedule_is_valid(self, bm1_schedule, bm1):
        durations = {a.task: a.duration * 1.1 for a in bm1_schedule}
        powers = {a.task: a.power for a in bm1_schedule}
        retimed = retime_schedule(bm1_schedule, durations, powers)
        retimed.validate()  # precedence + exclusivity still hold
        assert len(retimed) == bm1.num_tasks

    def test_longer_durations_longer_makespan(self, bm1_schedule):
        durations = {a.task: a.duration * 1.5 for a in bm1_schedule}
        powers = {a.task: a.power for a in bm1_schedule}
        retimed = retime_schedule(bm1_schedule, durations, powers)
        assert retimed.makespan > bm1_schedule.makespan


class TestReclaimSlack:
    def test_deadline_still_met(self, bm1_schedule):
        result = reclaim_slack(bm1_schedule)
        assert result.schedule.makespan <= bm1_schedule.graph.deadline + 1e-9
        result.schedule.validate()

    def test_energy_never_increases(self, bm1_schedule):
        result = reclaim_slack(bm1_schedule)
        assert result.energy_after <= result.energy_before + 1e-9

    def test_slack_is_actually_used(self, bm1_schedule):
        """Bm1 baseline has >100 units of slack: some task must slow down."""
        result = reclaim_slack(bm1_schedule)
        assert result.lowered_tasks > 0
        assert result.energy_saving_fraction > 0.01

    def test_levels_recorded_per_task(self, bm1_schedule, bm1):
        result = reclaim_slack(bm1_schedule)
        assert set(result.levels) == set(bm1.task_names())

    def test_no_slack_means_no_lowering(self, bm1_schedule):
        result = reclaim_slack(bm1_schedule, deadline=bm1_schedule.makespan)
        # compaction during retiming may create tiny slack, but with a
        # deadline equal to the makespan nothing substantial can slow down
        assert result.energy_saving_fraction < 0.25

    def test_deterministic(self, bm1_schedule):
        a = reclaim_slack(bm1_schedule)
        b = reclaim_slack(bm1_schedule)
        assert a.energy_after == pytest.approx(b.energy_after)
        assert {t: l.name for t, l in a.levels.items()} == {
            t: l.name for t, l in b.levels.items()
        }

    def test_reduces_temperature(self, bm1_schedule):
        """DVFS on top of the ASP lowers steady-state temperatures."""
        from repro.analysis.metrics import evaluate_schedule
        from repro.floorplan.platform import platform_floorplan

        plan = platform_floorplan(bm1_schedule.architecture)
        before = evaluate_schedule(bm1_schedule, floorplan=plan)
        result = reclaim_slack(bm1_schedule)
        after = evaluate_schedule(result.schedule, floorplan=plan)
        assert after.avg_temperature < before.avg_temperature

    def test_empty_levels_rejected(self, bm1_schedule):
        with pytest.raises(SchedulingError):
            reclaim_slack(bm1_schedule, levels=[])

    def test_first_level_must_be_nominal(self, bm1_schedule):
        with pytest.raises(SchedulingError):
            reclaim_slack(
                bm1_schedule,
                levels=[DVFSLevel("slow", frequency=0.5, voltage=0.7)],
            )

    def test_policy_name_tagged(self, bm1_schedule):
        result = reclaim_slack(bm1_schedule)
        assert result.schedule.policy_name.endswith("+dvfs")
