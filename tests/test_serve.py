"""The serve subsystem: protocol, engine cache, worker pool, daemon.

The load-bearing pins:

* **sub-spec hash stability** — the cache keys are content hashes of
  spec subtrees, pinned here as literals; a hash change invalidates
  every warm daemon's cache on deploy and must be a deliberate act;
* **lease isolation** — cache hits fork fresh counters over shared
  immutable arrays, so concurrent workers never share mutable state;
* **byte-identity** — a served record equals the in-process
  ``Flow.run`` record modulo provenance/timings/diagnostics;
* **backpressure** — a full queue answers 429 + ``Retry-After``
  immediately instead of stacking blocked connection threads.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.flow import Flow, platform_spec
from repro.flow.spec import FloorplanSpec, FlowSpec
from repro.results import ResultStore
from repro.serve import (
    EngineCache,
    ServeClient,
    ServeDaemon,
    ServeJob,
    WorkerPool,
    QueueFullError,
    floorplan_subspec_hash,
    library_subspec_hash,
    platform_cache_key,
    solver_subspec_hash,
    subspec_hash,
    workload_cache_key,
)
from repro.serve import protocol


def bm1_spec(**kwargs):
    return platform_spec("Bm1", policy="thermal", **kwargs)


#: Channels that legitimately differ between servings of the same spec.
VARIABLE_KEYS = ("provenance", "timings", "diagnostics")


def comparable(record):
    trimmed = dict(record)
    for key in VARIABLE_KEYS:
        trimmed.pop(key, None)
    return trimmed


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_submit_round_trips_the_spec(self):
        spec = bm1_spec(weight=0.7)
        raw = protocol.encode({"spec": spec.to_dict(), "store": False})
        request = protocol.parse_submit(raw)
        assert request.spec == spec
        assert request.store is False
        assert request.suite == "serve"
        assert request.scenario == ""

    def test_unknown_keys_rejected(self):
        raw = protocol.encode({"spec": bm1_spec().to_dict(), "sotre": True})
        with pytest.raises(ServeError, match="sotre"):
            protocol.parse_submit(raw)

    def test_missing_spec_rejected(self):
        with pytest.raises(ServeError, match="spec"):
            protocol.parse_submit(b'{"store": true}')

    def test_invalid_spec_rejected_with_detail(self):
        raw = protocol.encode({"spec": {"graph": {"kind": "nope"}}})
        with pytest.raises(ServeError, match="invalid spec"):
            protocol.parse_submit(raw)

    def test_non_json_and_non_object_bodies_rejected(self):
        with pytest.raises(ServeError, match="not valid JSON"):
            protocol.parse_submit(b"{nope")
        with pytest.raises(ServeError, match="JSON object"):
            protocol.parse_submit(b"[1, 2]")

    def test_store_must_be_boolean(self):
        raw = protocol.encode({"spec": bm1_spec().to_dict(), "store": 1})
        with pytest.raises(ServeError, match="boolean"):
            protocol.parse_submit(raw)

    def test_payload_shapes_carry_protocol_version(self):
        success = protocol.success_payload({"x": 1}, "req-1", "w0", {})
        error = protocol.error_payload("busy", "full", "req-2")
        assert success["ok"] and success["protocol"] == 1
        assert success["record"] == {"x": 1}
        assert not error["ok"] and error["error"]["kind"] == "busy"
        assert error["request_id"] == "req-2"


# ----------------------------------------------------------------------
# sub-spec hashes (satellite: pinned literals)
# ----------------------------------------------------------------------
class TestSubSpecHashes:
    def test_pinned_hash_literals(self):
        """The cache keys for the canonical Bm1 thermal spec, pinned.

        A failure here means every warm daemon's cache is invalidated on
        deploy — fine if deliberate (update the literals), a bug if not.
        """
        spec = bm1_spec()
        assert floorplan_subspec_hash(spec) == "dca817a3c93b0ad6459a"
        assert solver_subspec_hash(spec) == "11ad25683f3408c70246"
        assert library_subspec_hash(spec) == "0a046cf9ca71718cc0c0"
        assert platform_cache_key(spec) == (
            "dca817a3c93b0ad6459a:11ad25683f3408c70246"
        )
        assert workload_cache_key(spec) == "0a046cf9ca71718cc0c0"
        assert subspec_hash({}) == "44136fa355b3678a1146"

    def test_policy_weight_change_preserves_both_keys(self):
        a, b = bm1_spec(), bm1_spec(weight=0.7)
        assert platform_cache_key(a) == platform_cache_key(b)
        assert workload_cache_key(a) == workload_cache_key(b)

    def test_defaulted_and_explicit_platform_floorplan_hash_alike(self):
        defaulted = bm1_spec()
        explicit = FlowSpec.from_dict(
            {**defaulted.to_dict(),
             "floorplan": FloorplanSpec(kind="platform").to_dict()}
        )
        assert floorplan_subspec_hash(explicit) == floorplan_subspec_hash(
            defaulted
        )

    def test_graph_change_moves_workload_key_not_platform_key(self):
        a, b = bm1_spec(), platform_spec("Bm2", policy="thermal")
        assert workload_cache_key(a) != workload_cache_key(b)
        assert platform_cache_key(a) == platform_cache_key(b)

    def test_floorplan_change_moves_platform_key_not_workload_key(self):
        a = bm1_spec()
        b = bm1_spec(floorplan=FloorplanSpec(kind="genetic"))
        assert platform_cache_key(a) != platform_cache_key(b)
        assert workload_cache_key(a) == workload_cache_key(b)


# ----------------------------------------------------------------------
# the engine cache
# ----------------------------------------------------------------------
class TestEngineCache:
    def test_workload_hit_returns_the_cached_pair(self):
        cache = EngineCache()
        pair = cache.workload_for(bm1_spec())
        again = cache.workload_for(bm1_spec(weight=0.7))
        assert again[0] is pair[0] and again[1] is pair[1]
        assert cache.workloads.stats()["hits"] == 1

    def test_platform_leases_are_isolated_but_share_arrays(self):
        cache = EngineCache()
        first = cache.platform_for(bm1_spec())
        second = cache.platform_for(bm1_spec(weight=0.7))
        assert first.thermal is not second.thermal
        # the expensive immutable state is shared, not rebuilt
        assert first.thermal.network is second.thermal.network
        engine_a = first.thermal.query_engine()
        engine_b = second.thermal.query_engine()
        assert engine_a.response is engine_b.response
        # counters are per-lease
        first.thermal.average_temperature({"pe0": 5.0})
        assert first.thermal.query_count == 1
        assert second.thermal.query_count == 0

    def test_zero_entries_is_truly_cold(self):
        cache = EngineCache(max_entries=0)
        cache.platform_for(bm1_spec())
        cache.platform_for(bm1_spec())
        stats = cache.stats()
        assert stats["platforms"]["entries"] == 0
        assert stats["platforms"]["hits"] == 0
        assert stats["platforms"]["misses"] == 2

    def test_non_hotspot_solver_bypasses_platform_cache(self):
        cache = EngineCache()
        spec = FlowSpec.from_dict(
            {**bm1_spec().to_dict(), "thermal": {"solver": "gridmodel"}}
        )
        assert cache.platform_for(spec) is None
        assert cache.stats()["platform_bypasses"] == 1

    def test_flow_marks_engine_cache_provenance(self):
        cache = EngineCache()
        spec = bm1_spec()
        cold = Flow(cache=cache).run(spec)
        warm = Flow(cache=cache).run(spec)
        assert warm.provenance["engine_cache"] == {
            "workload": True, "platform": True,
        }
        assert cold.provenance["engine_cache"] == {
            "workload": True, "platform": True,
        }  # workload_for always returns a pair; both runs lease fine

    def test_cached_flow_result_matches_uncached(self):
        cache = EngineCache()
        spec = bm1_spec()
        Flow(cache=cache).run(spec)  # populate
        warm = Flow(cache=cache).run(spec).as_record(suite="s").to_dict()
        cold = Flow().run(spec).as_record(suite="s").to_dict()
        assert comparable(warm) == comparable(cold)


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_jobs_execute_and_carry_provenance(self, tmp_path):
        pool = WorkerPool(
            cache=EngineCache(), workers=2, store=tmp_path / "runs"
        )
        pool.start()
        try:
            jobs = [
                ServeJob(request_id=f"req-{i}", spec=bm1_spec(weight=w))
                for i, w in enumerate((0.3, 0.5, 0.7))
            ]
            for job in jobs:
                pool.submit(job)
            for job in jobs:
                assert job.done.wait(timeout=60)
                assert job.error is None
                assert job.record["provenance"]["request_id"] == job.request_id
                assert job.record["provenance"]["served_by"].startswith(
                    "serve-worker-"
                )
        finally:
            pool.stop()
        stored = ResultStore(tmp_path / "runs").load()
        assert len(stored) == 3
        assert pool.stats()["completed"] == 3

    def test_repro_errors_become_typed_job_errors(self):
        pool = WorkerPool(workers=1)
        pool.start()
        try:
            bad = FlowSpec.from_dict(
                {**bm1_spec().to_dict(), "policy": {"name": "nope"}}
            )
            job = ServeJob(request_id="req-x", spec=bad, store=False)
            pool.submit(job)
            assert job.done.wait(timeout=60)
        finally:
            pool.stop()
        kind, message = job.error
        assert kind == "SchedulingError"
        assert "nope" in message

    def test_full_queue_rejects_immediately(self):
        pool = WorkerPool(workers=1, queue_size=1)  # never started
        pool.submit(ServeJob(request_id="a", spec=bm1_spec(), store=False))
        with pytest.raises(QueueFullError) as excinfo:
            pool.submit(ServeJob(request_id="b", spec=bm1_spec(), store=False))
        assert excinfo.value.retry_after_s >= 1
        assert pool.stats()["rejected"] == 1

    def test_stats_shape(self):
        pool = WorkerPool(cache=EngineCache(), workers=2, queue_size=5)
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["queue_capacity"] == 5
        assert {"window", "mean_s", "p50_s", "p90_s", "p99_s"} <= set(
            stats["latency"]
        )
        assert {"workloads", "platforms"} <= set(stats["cache"])


# ----------------------------------------------------------------------
# the daemon, over real loopback HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    store = tmp_path_factory.mktemp("serve-store")
    with ServeDaemon(
        port=0, workers=2, store=store, request_timeout_s=120.0
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(daemon):
    return ServeClient(daemon.url, timeout_s=120.0)


class TestDaemon:
    def test_health_and_stats_endpoints(self, client):
        assert client.health()
        stats = client.stats()
        assert {"requests", "timeouts", "workers", "queue_depth",
                "latency", "cache"} <= set(stats)

    def test_served_record_is_byte_identical_to_in_process(self, client):
        spec = bm1_spec(weight=0.61)
        payload = client.submit(spec, store=False)
        assert payload["ok"] and payload["served_by"]
        local = Flow().run(spec).as_record(suite="serve").to_dict()
        assert comparable(payload["record"]) == comparable(local)

    def test_second_serving_hits_the_warm_cache(self, client):
        spec = bm1_spec(weight=0.62)
        client.submit(spec, store=False)
        before = client.stats()["cache"]["platforms"]["hits"]
        client.submit(bm1_spec(weight=0.63), store=False)
        after = client.stats()["cache"]["platforms"]["hits"]
        assert after > before

    def test_stored_records_carry_serve_provenance(self, daemon, client):
        payload = client.submit(bm1_spec(weight=0.64), suite="prov-test")
        stored = ResultStore(daemon.pool._store.root).load(suite="prov-test")
        assert len(stored) == 1
        record = list(stored)[0]
        assert record.provenance["request_id"] == payload["request_id"]
        assert record.provenance["served_by"] == payload["served_by"]

    def test_execution_failure_maps_to_typed_error(self, client):
        bad = FlowSpec.from_dict(
            {**bm1_spec().to_dict(), "policy": {"name": "nope"}}
        )
        with pytest.raises(ServeError, match=r"\[SchedulingError\]"):
            client.submit(bad, store=False)

    def test_bad_request_and_unknown_endpoint(self, daemon):
        import urllib.request

        request = urllib.request.Request(
            daemon.url + "/run", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "bad-request"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(daemon.url + "/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_request_ids_are_unique_and_clock_free(self, client):
        ids = {
            client.submit(bm1_spec(weight=w), store=False)["request_id"]
            for w in (0.71, 0.72, 0.73)
        }
        assert len(ids) == 3
        assert all(i.startswith("req-") for i in ids)


class TestHandleSubmitPolicy:
    """The request policy, driven without sockets."""

    def _daemon(self, **kwargs):
        # port=0: ephemeral bind, never started — handle_submit only
        return ServeDaemon(port=0, **kwargs)

    def test_timeout_answers_504_and_counts(self):
        daemon = self._daemon(workers=1, request_timeout_s=0.05)
        try:
            # pool not started: the job can never complete
            raw = protocol.encode({"spec": bm1_spec().to_dict()})
            status, payload, _ = daemon.handle_submit(raw)
            assert status == 504
            assert payload["error"]["kind"] == "timeout"
            assert daemon.stats()["timeouts"] == 1
        finally:
            daemon._http.server_close()

    def test_full_queue_answers_429_with_retry_after(self):
        daemon = self._daemon(
            workers=1, queue_size=1, request_timeout_s=0.05
        )
        try:
            raw = protocol.encode({"spec": bm1_spec().to_dict()})
            daemon.handle_submit(raw)  # fills the (undrained) queue
            status, payload, headers = daemon.handle_submit(raw)
            assert status == 429
            assert payload["error"]["kind"] == "busy"
            assert int(headers["Retry-After"]) >= 1
        finally:
            daemon._http.server_close()

    def test_unparsable_body_answers_400(self):
        daemon = self._daemon(workers=1)
        try:
            status, payload, _ = daemon.handle_submit(b'{"no-spec": 1}')
            assert status == 400
            assert payload["error"]["kind"] == "bad-request"
        finally:
            daemon._http.server_close()

    def test_invalid_constructor_arguments_raise(self):
        with pytest.raises(ServeError, match="request_timeout_s"):
            ServeDaemon(port=0, request_timeout_s=0.0)
        with pytest.raises(ServeError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ServeError, match="timeout_s"):
            ServeClient("http://x", timeout_s=0)


# ----------------------------------------------------------------------
# the CLI pair
# ----------------------------------------------------------------------
class TestSubmitCLI:
    def test_submit_shorthand_prints_served_row(self, daemon, capsys):
        code = main([
            "submit", "--url", daemon.url, "--benchmark", "Bm1",
            "--policy", "thermal", "--no-store",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "served by" in out and "serve-worker-" in out

    def test_submit_spec_file_json_payload(self, daemon, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(bm1_spec(weight=0.8).to_json(indent=2))
        code = main([
            "submit", str(spec_path), "--url", daemon.url, "--no-store",
            "--json",
        ])
        assert code == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 1
        assert payloads[0]["ok"] and payloads[0]["record"]["spec"][
            "policy"
        ]["weight"] == 0.8

    def test_submit_unreachable_daemon_exits_one(self, capsys):
        code = main([
            "submit", "--url", "http://127.0.0.1:1", "--timeout", "2",
        ])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
