"""Tests for thermal materials and package constants."""

import pytest

from repro.errors import ThermalError
from repro.thermal.materials import COPPER, INTERFACE, SILICON, Material
from repro.thermal.package import PackageConfig, default_package
from repro.units import MM


class TestMaterial:
    def test_conduction_resistance(self):
        slab = Material("m", conductivity=100.0, volumetric_capacity=1e6)
        # R = t / (k A) = 0.001 / (100 * 0.01) = 0.001
        assert slab.conduction_resistance(0.001, 0.01) == pytest.approx(1e-3)

    def test_capacitance(self):
        slab = Material("m", conductivity=1.0, volumetric_capacity=2e6)
        assert slab.capacitance(1e-6) == pytest.approx(2.0)

    def test_invalid_properties_rejected(self):
        with pytest.raises(ThermalError):
            Material("m", conductivity=0.0, volumetric_capacity=1.0)
        with pytest.raises(ThermalError):
            Material("m", conductivity=1.0, volumetric_capacity=-1.0)

    def test_invalid_slab_rejected(self):
        with pytest.raises(ThermalError):
            SILICON.conduction_resistance(0.0, 1.0)
        with pytest.raises(ThermalError):
            SILICON.capacitance(0.0)

    def test_hotspot_default_ordering(self):
        # copper conducts much better than silicon, which beats TIM
        assert COPPER.conductivity > SILICON.conductivity > INTERFACE.conductivity


class TestPackageConfig:
    def test_default_is_valid(self):
        default_package()

    def test_negative_field_rejected(self):
        with pytest.raises(ThermalError):
            PackageConfig(convection_resistance=0.0)
        with pytest.raises(ThermalError):
            PackageConfig(die_thickness_m=-1.0)

    def test_vertical_resistance_decreases_with_area(self):
        package = default_package()
        small = package.vertical_resistance(9e-6)   # 9 mm2
        large = package.vertical_resistance(36e-6)  # 36 mm2
        assert large < small

    def test_vertical_resistance_magnitude(self):
        # a 36 mm2 embedded block should see on the order of 1 K/W
        package = default_package()
        assert 0.2 < package.vertical_resistance(36e-6) < 10.0

    def test_vertical_resistance_rejects_bad_area(self):
        with pytest.raises(ThermalError):
            default_package().vertical_resistance(0.0)

    def test_lateral_conductance_scales_with_edge(self):
        package = default_package()
        short = package.lateral_conductance(3.0 * MM, 6.0 * MM)
        long = package.lateral_conductance(6.0 * MM, 6.0 * MM)
        assert long == pytest.approx(2.0 * short)

    def test_lateral_conductance_rejects_bad_inputs(self):
        package = default_package()
        with pytest.raises(ThermalError):
            package.lateral_conductance(0.0, 1.0)
        with pytest.raises(ThermalError):
            package.lateral_conductance(1.0, 0.0)

    def test_capacitances_positive(self):
        package = default_package()
        assert package.block_capacitance(36e-6) > 0.0
        assert package.spreader_capacitance() > 0.0
        assert package.sink_capacitance() > 0.0

    def test_spreader_to_sink_resistance_small(self):
        # copper slabs: well under 1 K/W
        assert default_package().spreader_to_sink_resistance() < 1.0
