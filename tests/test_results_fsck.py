"""``repro results fsck``: verify, repair, and compact a damaged store.

The recovery contract pinned here: after ``fsck_store(..., repair=True)``
the store loads exactly ``report.loadable`` records, and every blob that
was ever *published* (the blob write precedes the index write) comes
back — including blobs orphaned by torn index writes from two writer
processes crashing concurrently.
"""

import json
import multiprocessing

import pytest

from repro.errors import InjectedFaultError
from repro.flow import platform_spec, run_many
from repro.resilience import FaultPlan, FaultSpec, inject
from repro.results import FsckReport, ResultStore, RunRecord, fsck_store


@pytest.fixture(scope="module")
def records():
    specs = [
        platform_spec(bench, policy=policy)
        for bench in ("Bm1", "Bm2")
        for policy in ("heuristic3", "thermal")
    ]
    return [r.as_record(suite="suite-a") for r in run_many(specs)]


@pytest.fixture()
def store(tmp_path, records):
    store = ResultStore(tmp_path / "store")
    store.extend(records)
    return store


class TestVerify:
    def test_clean_store_is_clean(self, store):
        report = fsck_store(store)
        assert report.ok()
        assert not report.repaired
        assert report.entries_kept == 4
        assert report.loadable == 4
        assert report.problems == []

    def test_verify_counts_damage_without_touching_it(self, store, records):
        # orphan a blob by dropping its ledger line, corrupt another
        lines = store.index_path.read_text(encoding="utf-8").splitlines()
        entry = json.loads(lines[0])
        store.index_path.write_text(
            "\n".join(lines[1:]) + "\n" + '{"to', encoding="utf-8"
        )
        corrupt_path = store.root / json.loads(lines[1])["blob"]
        corrupt_path.write_text('{"truncated": ', encoding="utf-8")
        before = store.index_path.read_text(encoding="utf-8")

        report = fsck_store(store)
        assert not report.ok()
        assert report.orphan_blobs == 1
        assert report.corrupt_blobs == 1
        assert report.torn_lines == 1
        assert store.index_path.read_text(encoding="utf-8") == before
        assert corrupt_path.is_file()  # verify never quarantines
        assert (store.root / json.loads(lines[0])["blob"]).is_file()
        assert entry["id"] in " ".join(report.problems)


class TestRepair:
    def test_torn_tail_is_compacted_away(self, store):
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"id": "r9999')
        report = fsck_store(store, repair=True)
        assert report.repaired
        assert report.torn_lines == 1
        assert report.entries_kept == 4
        tail = store.index_path.read_text(encoding="utf-8")
        assert tail.endswith("\n") and '"r9999' not in tail
        assert fsck_store(store).ok()

    def test_orphan_blob_is_reindexed_and_loads(self, store):
        lines = store.index_path.read_text(encoding="utf-8").splitlines()
        dropped = json.loads(lines[-1])
        store.index_path.write_text(
            "\n".join(lines[:-1]) + "\n", encoding="utf-8"
        )
        assert len(ResultStore(store.root).load()) == 3

        report = fsck_store(store.root, repair=True)
        assert report.orphan_blobs == 1
        assert report.loadable == 4
        runs = ResultStore(store.root).load()
        assert len(runs) == report.loadable
        assert dropped["spec_hash"] in {r.spec_hash for r in runs}

    def test_corrupt_blob_is_quarantined_not_deleted(self, store):
        entry = json.loads(
            store.index_path.read_text(encoding="utf-8").splitlines()[0]
        )
        blob = store.root / entry["blob"]
        blob.write_text("not json at all", encoding="utf-8")

        report = fsck_store(store, repair=True)
        assert report.corrupt_blobs == 1
        assert report.loadable == 3
        assert not blob.exists()
        quarantined = store.root / "quarantine" / blob.name
        assert quarantined.read_text(encoding="utf-8") == "not json at all"
        assert len(ResultStore(store.root).load()) == report.loadable
        assert fsck_store(store.root).ok()

    def test_missing_blob_entry_and_stale_tmp_are_dropped(self, store):
        entry = json.loads(
            store.index_path.read_text(encoding="utf-8").splitlines()[2]
        )
        (store.root / entry["blob"]).unlink()
        stale = store.root / "records" / "r123456-deadbeef.json.tmp"
        stale.write_text("{", encoding="utf-8")

        report = fsck_store(store, repair=True)
        assert report.missing_blobs == 1
        assert report.stale_tmp == 1
        assert report.loadable == 3
        assert not stale.exists()
        assert len(ResultStore(store.root).load()) == 3

    def test_foreign_schema_blob_is_kept_but_not_loadable(self, store, records):
        foreign = records[0].to_dict()
        foreign["schema_version"] = 999
        blob = store.root / "records" / "r777777-cafecafe.json"
        blob.write_text(json.dumps(foreign), encoding="utf-8")

        report = fsck_store(store, repair=True)
        assert report.orphan_blobs == 1
        assert report.schema_mismatch == 1
        assert report.entries_kept == 5
        assert report.loadable == 4
        assert blob.exists()  # kept: data, just not ours to parse
        assert len(ResultStore(store.root).load()) == report.loadable

    def test_repair_of_a_clean_store_changes_nothing(self, store):
        before = store.index_path.read_text(encoding="utf-8")
        report = fsck_store(store, repair=True)
        assert report.ok()
        assert store.index_path.read_text(encoding="utf-8") == before

    def test_injected_torn_write_round_trip(self, tmp_path, records):
        """The single-process version of the chaos pin: a torn-index
        fault orphans the blob, fsck re-indexes it."""
        store = ResultStore(tmp_path / "torn")
        plan = FaultPlan(faults=(
            FaultSpec(site="store.torn-index", ordinal=1),
        ))
        with inject(plan):
            store.append(records[0])
            with pytest.raises(InjectedFaultError):
                store.append(records[1])
            store.append(records[2])
        assert len(ResultStore(store.root).load()) == 2

        report = fsck_store(store.root, repair=True)
        assert report.torn_lines == 1
        assert report.orphan_blobs == 1
        assert report.loadable == 3
        runs = ResultStore(store.root).load()
        assert len(runs) == report.loadable
        assert {r.spec_hash for r in runs} == {
            r.spec_hash for r in records[:3]
        }


def _append_with_torn_faults(store_root, record_dict, n, torn_ordinals,
                             barrier):
    """Child-process writer that crashes mid-index-write on schedule.

    Module-level so spawn/fork both pickle it.  Fault plans are
    process-global, so each child arms its own; the barrier lines both
    writers up before the first append so the torn fragments interleave
    under real contention.
    """
    from repro.errors import InjectedFaultError
    from repro.resilience import FaultPlan, FaultSpec, inject
    from repro.results import ResultStore, RunRecord

    store = ResultStore(store_root)
    record = RunRecord.from_dict(record_dict)
    plan = FaultPlan(faults=tuple(
        FaultSpec(site="store.torn-index", ordinal=o) for o in torn_ordinals
    ))
    barrier.wait(timeout=30)
    with inject(plan):
        for _ in range(n):
            try:
                store.append(record)
            except InjectedFaultError:
                pass  # blob published, ledger line torn — fsck's problem


class TestTwoWriterCorruption:
    def test_fsck_recovers_every_committed_blob(self, tmp_path, records):
        """Two writer processes, each tearing two index writes under
        contention: every *published* blob (blob-before-index makes that
        all of them) must come back after repair, and ``load()`` must
        agree with the report's ``loadable`` count."""
        ctx = multiprocessing.get_context()
        store_root = tmp_path / "contended"
        ResultStore(store_root)  # create the directory up front
        n = 12
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(
                target=_append_with_torn_faults,
                args=(store_root, record.to_dict(), n, ordinals, barrier),
            )
            for record, ordinals in zip(records[:2], ((2, 7), (0, 9)))
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        # before repair: 4 torn appends → 4 unreachable records
        damaged = ResultStore(store_root).load()
        assert len(damaged) == 2 * n - 4

        report = fsck_store(store_root, repair=True)
        assert report.repaired
        assert report.orphan_blobs == 4
        assert report.corrupt_blobs == 0
        assert report.entries_kept == 2 * n
        assert report.loadable == 2 * n

        store = ResultStore(store_root)
        runs = store.load()
        assert len(runs) == report.loadable
        assert runs.skipped == 0
        by_hash = {}
        for run in runs:
            by_hash[run.spec_hash] = by_hash.get(run.spec_hash, 0) + 1
        assert by_hash == {
            records[0].spec_hash: n, records[1].spec_hash: n,
        }
        # the repaired ledger is append-ready: ids never collide
        ids = [e["id"] for e in store.index()]
        assert len(ids) == len(set(ids)) == 2 * n
        store.append(records[2])
        assert len(ResultStore(store_root).load()) == 2 * n + 1
        assert fsck_store(store_root).ok()


class TestReportShape:
    def test_report_is_json_safe_and_counts_cohere(self, store):
        report = fsck_store(store)
        payload = report.as_dict()
        json.dumps(payload)  # must not need a default= hook
        assert payload["ok"] is True
        assert payload["loadable"] == payload["entries_kept"]
        assert isinstance(report, FsckReport)
