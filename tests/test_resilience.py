"""repro.resilience: fault injection, retry policies, batch chaos.

The load-bearing pins: (1) a disarmed harness changes nothing — a
fault-free run with retry machinery enabled is identical (modulo the
variable provenance/timings/diagnostics channels) to a plain run;
(2) seeded plans are deterministic; (3) injected crashes/stragglers are
recovered with every recovered result identical to the fault-free one;
(4) a poison spec quarantines into the report instead of killing the
sweep.
"""

import pytest

from repro.errors import InjectedFaultError, ResilienceError
from repro.flow import platform_spec, run_many, spec_hash
from repro.flow.batch import iter_results
from repro.resilience import (
    FAULT_SITES,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    RetryBudget,
    RetryPolicy,
    RunReport,
    active_injector,
    arm,
    check_fault,
    disarm,
    inject,
)
from repro.resilience import retry as retry_mod

#: Channels that legitimately differ between runs of the same spec.
VARIABLE_KEYS = ("provenance", "timings", "diagnostics")

#: Backoffs collapse to zero so chaos tests run at full speed.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


def comparable(result):
    trimmed = result.as_dict()
    for key in VARIABLE_KEYS:
        trimmed.pop(key, None)
    return trimmed


def sweep_specs(n=4):
    weights = [round(0.1 + 0.8 * i / max(1, n - 1), 3) for i in range(n)]
    return [
        platform_spec("Bm1", policy="thermal", weight=w) for w in weights
    ]


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test leaks an armed plan into its neighbours."""
    disarm()
    yield
    disarm()


# ----------------------------------------------------------------------
# plans and the injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault site"):
            FaultSpec(site="batch.no-such-site")

    def test_spec_matches_its_ordinal_window(self):
        fault = FaultSpec(site="batch.worker-crash", ordinal=2, count=3)
        assert [fault.matches(i) for i in range(6)] == [
            False, False, True, True, True, False,
        ]

    def test_plan_round_trips_through_dict(self):
        plan = FaultPlan.seeded(
            11, {"batch.worker-crash": 2, "store.torn-index": 1}
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_seeded_plans_are_deterministic(self):
        sites = {"batch.worker-crash": 2, "batch.worker-slow": 1}
        assert FaultPlan.seeded(7, sites) == FaultPlan.seeded(7, sites)
        assert FaultPlan.seeded(7, sites) != FaultPlan.seeded(8, sites)

    def test_seeded_ordinals_are_distinct_and_windowed(self):
        plan = FaultPlan.seeded(3, {"batch.worker-crash": 5}, window=8)
        ordinals = [f.ordinal for f in plan.faults]
        assert len(set(ordinals)) == 5
        assert all(0 <= o < 8 for o in ordinals)

    def test_more_faults_than_window_rejected(self):
        with pytest.raises(ResilienceError, match="window"):
            FaultPlan.seeded(0, {"batch.worker-crash": 9}, window=8)


class TestInjector:
    def test_disarmed_gate_is_a_no_op(self):
        assert active_injector() is None
        assert check_fault("batch.worker-crash") is None

    def test_armed_gate_fires_at_its_ordinal_only(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="store.torn-index", ordinal=1),
        ))
        with inject(plan) as injector:
            hits = [check_fault("store.torn-index") for _ in range(3)]
        assert [h is not None for h in hits] == [False, True, False]
        assert injector.fired() == ({"site": "store.torn-index", "ordinal": 1},)
        assert injector.report()["sites_seen"] == {"store.torn-index": 3}

    def test_plans_do_not_nest(self):
        arm(FaultPlan())
        with pytest.raises(ResilienceError, match="already armed"):
            arm(FaultPlan())

    def test_every_site_is_documented_in_the_tuple(self):
        # the taxonomy table in docs/RESILIENCE.md mirrors this tuple
        assert FAULT_SITES == (
            "batch.worker-crash",
            "batch.worker-slow",
            "batch.cache-corrupt",
            "store.torn-index",
            "store.corrupt-blob",
            "serve.connection-reset",
            "serve.handler-exception",
        )


# ----------------------------------------------------------------------
# retry policy / budget / breaker
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.3, jitter=0.0,
        )
        assert policy.delays() == (0.1, 0.2, 0.3, 0.3)

    def test_jitter_shaves_downward_and_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=3)
        once = policy.delay_s(1, key="spec-a")
        assert once == policy.delay_s(1, key="spec-a")
        assert 0.5 <= once <= 1.0
        assert once != policy.delay_s(1, key="spec-b")

    def test_call_retries_then_reraises_the_final_failure(self):
        attempts = []

        def flaky():
            attempts.append(1)
            raise ValueError(f"boom {len(attempts)}")

        with pytest.raises(ValueError, match="boom 3"):
            FAST_RETRY.call(flaky, retry_on=(ValueError,))
        assert len(attempts) == 3

    def test_call_stops_retrying_on_success(self):
        attempts = []

        def eventually():
            attempts.append(1)
            if len(attempts) < 2:
                raise KeyError("once")
            return "done"

        assert FAST_RETRY.call(eventually, retry_on=(KeyError,)) == "done"
        assert len(attempts) == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)


class TestRetryBudget:
    def test_budget_exhausts(self):
        budget = RetryBudget(2)
        assert [budget.take(), budget.take(), budget.take()] == [
            True, True, False,
        ]
        assert budget.used == 2
        assert budget.remaining == 0


class TestCircuitBreaker:
    def test_opens_at_threshold_and_recovers_via_probe(self, monkeypatch):
        clock = [0.0]
        monkeypatch.setattr(retry_mod, "now", lambda: clock[0])
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")
        # cooldown elapses: exactly one half-open probe gets through
        clock[0] = 10.0
        assert breaker.allow("k")
        assert not breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

    def test_failed_probe_reopens_for_a_fresh_cooldown(self, monkeypatch):
        clock = [0.0]
        monkeypatch.setattr(retry_mod, "now", lambda: clock[0])
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0)
        breaker.record_failure("k")
        clock[0] = 5.0
        assert breaker.allow("k")     # the probe
        breaker.record_failure("k")   # probe failed
        clock[0] = 9.0                # < fresh cooldown from t=5
        assert not breaker.allow("k")
        assert breaker.open_keys() == ("k",)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=60.0)
        breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")
        assert breaker.snapshot()["circuits"]["bad"]["state"] == "open"


# ----------------------------------------------------------------------
# batch chaos
# ----------------------------------------------------------------------
class TestBatchFaultFree:
    def test_retry_machinery_changes_nothing_when_disarmed(self):
        specs = sweep_specs(2)
        baseline = run_many(specs)
        report = RunReport()
        armed = run_many(specs, retry=FAST_RETRY, report=report)
        assert [comparable(r) for r in armed] == [
            comparable(r) for r in baseline
        ]
        assert report.ok()
        assert report.resubmissions == 0
        assert report.as_dict()["pool_restarts"] == 0


class TestBatchChaosSerial:
    def test_injected_crash_is_resubmitted_and_recovered(self):
        specs = sweep_specs(2)
        baseline = run_many(specs)
        report = RunReport()
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0),
        ))
        with inject(plan) as injector:
            recovered = run_many(specs, retry=FAST_RETRY, report=report)
        assert [comparable(r) for r in recovered] == [
            comparable(r) for r in baseline
        ]
        assert report.ok()
        assert report.resubmissions == 1
        assert injector.fired()[0]["site"] == "batch.worker-crash"
        # the injector's story rides the report artifact
        assert report.as_dict()["faults"]["injected"] == 1

    def test_injected_crash_without_retry_raises(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0),
        ))
        with inject(plan):
            with pytest.raises(InjectedFaultError, match="worker-crash"):
                run_many(sweep_specs(1))

    def test_poison_spec_quarantines_instead_of_aborting(self):
        specs = sweep_specs(2)
        report = RunReport()
        # crash spec 0's every attempt; spec 1 is untouched
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0, count=2),
        ))
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)
        with inject(plan):
            out = run_many(specs, retry=policy, report=report)
        assert out[0] is None
        assert out[1] is not None
        assert not report.ok()
        assert report.poisoned() == (spec_hash(specs[0]),)
        assert report.lost_indices() == (0,)
        assert report.quarantined[0]["attempts"] == 2

    def test_slow_fault_sleeps_but_serial_path_still_completes(self):
        specs = sweep_specs(1)
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-slow", ordinal=0, delay_s=0.01),
        ))
        with inject(plan) as injector:
            out = run_many(specs, retry=FAST_RETRY)
        assert out[0] is not None
        assert injector.fired()[0]["site"] == "batch.worker-slow"

    def test_iter_results_streams_none_free_pairs(self):
        specs = sweep_specs(2)
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0),
        ))
        with inject(plan):
            pairs = list(iter_results(specs, retry=FAST_RETRY))
        assert [index for index, _ in pairs] == [0, 1]
        assert all(result is not None for _, result in pairs)


class TestBatchChaosPool:
    def test_corrupt_cache_pickle_is_treated_as_a_miss(self, tmp_path):
        specs = sweep_specs(1)
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.cache-corrupt", ordinal=0),
        ))
        with inject(plan):
            first = run_many(specs, cache_dir=tmp_path)
        # the poisoned pickle must not serve a hit — nor crash the load
        second = run_many(specs, cache_dir=tmp_path)
        assert comparable(second[0]) == comparable(first[0])
        assert second[0].provenance.get("cache_hit") is not True

    def test_pool_crashes_and_straggler_recover_byte_identically(self):
        specs = sweep_specs(4)
        baseline = run_many(specs)
        report = RunReport()
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0),
            FaultSpec(site="batch.worker-crash", ordinal=2),
            FaultSpec(site="batch.worker-slow", ordinal=1, delay_s=5.0),
        ))
        with inject(plan) as injector:
            recovered = run_many(
                specs, workers=2, retry=FAST_RETRY, timeout_s=1.0,
                report=report,
            )
        assert [comparable(r) for r in recovered] == [
            comparable(r) for r in baseline
        ]
        assert report.ok()
        fired = {(f["site"], f["ordinal"]) for f in injector.fired()}
        assert fired == {
            ("batch.worker-crash", 0),
            ("batch.worker-crash", 2),
            ("batch.worker-slow", 1),
        }
        # both crashes surface as one BrokenProcessPool event: the window
        # restart resubmits everything in-flight but books one resubmit
        assert report.resubmissions >= 1
        assert report.pool_restarts >= 1

    def test_straggler_times_out_and_is_resubmitted(self):
        specs = sweep_specs(2)
        baseline = run_many(specs)
        report = RunReport()
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-slow", ordinal=0, delay_s=30.0),
        ))
        with inject(plan):
            recovered = run_many(
                specs, workers=2, retry=FAST_RETRY, timeout_s=1.0,
                report=report,
            )
        assert [comparable(r) for r in recovered] == [
            comparable(r) for r in baseline
        ]
        assert report.ok()
        assert report.timeouts >= 1
        assert report.resubmissions >= 1

    def test_pool_meltdown_quarantines_every_spec(self):
        specs = sweep_specs(2)
        report = RunReport()
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-crash", ordinal=0, count=999),
        ))
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)
        with inject(plan):
            out = run_many(specs, workers=2, retry=policy, report=report)
        assert out == [None, None]
        assert len(report.poisoned()) == 2
        assert report.lost_indices() == (0, 1)

    def test_timeout_without_retry_raises_flow_error(self):
        from repro.errors import FlowError

        specs = sweep_specs(1)
        plan = FaultPlan(faults=(
            FaultSpec(site="batch.worker-slow", ordinal=0, delay_s=5.0),
        ))
        with inject(plan):
            with pytest.raises(FlowError, match="wait budget"):
                run_many(specs, workers=2, timeout_s=0.2)
