"""Tests for temperature-driven reliability metrics."""

import math

import pytest

from repro.analysis.reliability import (
    BOLTZMANN_EV,
    ReliabilityReport,
    arrhenius_acceleration,
    electromigration_mttf_factor,
    reliability_report,
)
from repro.errors import ReproError


class TestArrhenius:
    def test_reference_is_unity(self):
        assert arrhenius_acceleration(85.0, 85.0) == pytest.approx(1.0)

    def test_hotter_accelerates(self):
        assert arrhenius_acceleration(105.0, 85.0) > 1.0

    def test_cooler_decelerates(self):
        assert arrhenius_acceleration(65.0, 85.0) < 1.0

    def test_closed_form(self):
        ea = 0.7
        t, t_ref = 273.15 + 100.0, 273.15 + 60.0
        expected = math.exp(ea / BOLTZMANN_EV * (1.0 / t_ref - 1.0 / t))
        assert arrhenius_acceleration(100.0, 60.0, ea) == pytest.approx(expected)

    def test_rule_of_thumb_doubling(self):
        """With Ea ~ 0.7 eV failure rates roughly double per 10 °C near 85 C."""
        factor = arrhenius_acceleration(95.0, 85.0)
        assert 1.5 < factor < 2.5

    def test_bad_activation_energy(self):
        with pytest.raises(ReproError):
            arrhenius_acceleration(85.0, 85.0, activation_energy_ev=0.0)


class TestMTTF:
    def test_inverse_of_acceleration(self):
        accel = arrhenius_acceleration(100.0, 65.0)
        assert electromigration_mttf_factor(100.0, 65.0) == pytest.approx(
            1.0 / accel
        )

    def test_hotter_shorter_life(self):
        assert electromigration_mttf_factor(110.0) < electromigration_mttf_factor(
            90.0
        )


class TestReport:
    def test_report_fields(self):
        report = reliability_report({"pe0": 95.0, "pe1": 80.0}, ref_temp_c=65.0)
        assert report.worst_pe == "pe0"
        assert report.system_mttf_factor == pytest.approx(
            report.pe_mttf_factors["pe0"]
        )
        assert set(report.pe_mttf_factors) == {"pe0", "pe1"}

    def test_system_limited_by_hottest(self):
        report = reliability_report({"a": 70.0, "b": 120.0})
        assert report.system_mttf_factor == min(report.pe_mttf_factors.values())

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            reliability_report({})

    def test_as_row(self):
        row = reliability_report({"a": 80.0}).as_row()
        assert {"ref_temp_C", "system_mttf_factor", "worst_pe"} <= set(row)

    def test_thermal_aware_schedule_lives_longer(self, bm1, bm1_library):
        """End-to-end: the paper's reliability motivation, quantified."""
        from repro.core.heuristics import BaselinePolicy, ThermalPolicy
        from repro.cosynth.framework import platform_flow

        base = platform_flow(bm1, bm1_library, BaselinePolicy())
        thermal = platform_flow(bm1, bm1_library, ThermalPolicy())
        report_base = reliability_report(base.evaluation.pe_temperatures)
        report_thermal = reliability_report(thermal.evaluation.pe_temperatures)
        assert (
            report_thermal.system_mttf_factor > report_base.system_mttf_factor
        )
