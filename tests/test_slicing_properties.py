"""Property-based tests for slicing floorplans.

The key invariants of the Polish-expression representation:

* evaluation never produces overlaps;
* total block area is conserved under every move;
* every block appears exactly once, with its (possibly rotated) dimensions;
* the die bounding box always contains all blocks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan.slicing import PolishExpression


@st.composite
def dims_maps(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    dims = {}
    for index in range(count):
        w = draw(st.floats(min_value=0.5, max_value=12.0))
        h = draw(st.floats(min_value=0.5, max_value=12.0))
        dims[f"b{index}"] = (w, h)
    return dims


@st.composite
def expressions(draw):
    dims = draw(dims_maps())
    expr = PolishExpression.initial(dims)
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    moves = draw(st.integers(min_value=0, max_value=20))
    for _ in range(moves):
        try:
            expr = expr.random_move(rng)
        except Exception:
            break
    return expr


@given(expr=expressions())
@settings(max_examples=60, deadline=None)
def test_evaluation_has_no_overlaps(expr):
    expr.evaluate().validate()


@given(expr=expressions())
@settings(max_examples=60, deadline=None)
def test_block_area_conserved(expr):
    plan = expr.evaluate()
    expected = sum(w * h for w, h in expr.dims.values())
    assert abs(plan.block_area - expected) < 1e-6


@given(expr=expressions())
@settings(max_examples=60, deadline=None)
def test_all_blocks_present_with_correct_dims(expr):
    plan = expr.evaluate()
    assert set(plan.block_names()) == set(expr.dims)
    for name, (w, h) in expr.dims.items():
        rect = plan.block(name).rect
        if name in expr.rotated:
            w, h = h, w
        assert abs(rect.w - w) < 1e-9
        assert abs(rect.h - h) < 1e-9


@given(expr=expressions())
@settings(max_examples=60, deadline=None)
def test_bounding_box_contains_all_blocks(expr):
    plan = expr.evaluate()
    box = plan.bounding_box()
    for block in plan:
        assert block.rect.x >= box.x - 1e-9
        assert block.rect.y >= box.y - 1e-9
        assert block.rect.x2 <= box.x2 + 1e-9
        assert block.rect.y2 <= box.y2 + 1e-9


@given(expr=expressions())
@settings(max_examples=60, deadline=None)
def test_die_area_at_least_block_area(expr):
    plan = expr.evaluate()
    assert plan.die_area >= plan.block_area - 1e-9


@given(expr=expressions(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_moves_are_reproducible(expr, seed):
    a = expr.random_move(random.Random(seed))
    b = expr.random_move(random.Random(seed))
    assert a.tokens == b.tokens
    assert a.rotated == b.rotated
