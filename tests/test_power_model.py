"""Tests for the PowerAccumulator."""

import pytest

from repro.errors import ReproError
from repro.power.model import PowerAccumulator


@pytest.fixture
def acc():
    return PowerAccumulator(["pe0", "pe1"], idle_power={"pe0": 0.1})


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            PowerAccumulator([])

    def test_duplicates_rejected(self):
        with pytest.raises(ReproError):
            PowerAccumulator(["a", "a"])

    def test_negative_idle_rejected(self):
        with pytest.raises(ReproError):
            PowerAccumulator(["a"], idle_power={"a": -0.1})

    def test_initial_state_zero(self, acc):
        assert acc.energy("pe0") == 0.0
        assert acc.busy_time("pe1") == 0.0
        assert acc.task_count("pe0") == 0
        assert acc.total_energy == 0.0


class TestRecording:
    def test_record_accumulates(self, acc):
        acc.record("pe0", power=5.0, duration=10.0)
        acc.record("pe0", power=2.0, duration=5.0)
        assert acc.energy("pe0") == pytest.approx(60.0)
        assert acc.busy_time("pe0") == pytest.approx(15.0)
        assert acc.task_count("pe0") == 2
        assert acc.total_energy == pytest.approx(60.0)

    def test_unknown_pe_rejected(self, acc):
        with pytest.raises(ReproError):
            acc.record("ghost", 1.0, 1.0)

    def test_negative_power_rejected(self, acc):
        with pytest.raises(ReproError):
            acc.record("pe0", -1.0, 1.0)

    def test_zero_duration_rejected(self, acc):
        with pytest.raises(ReproError):
            acc.record("pe0", 1.0, 0.0)


class TestAverages:
    def test_average_power_includes_idle(self, acc):
        acc.record("pe0", 5.0, 10.0)  # 50 J
        assert acc.average_power("pe0", horizon=100.0) == pytest.approx(0.6)
        assert acc.average_power("pe1", horizon=100.0) == pytest.approx(0.0)

    def test_average_powers_map(self, acc):
        acc.record("pe1", 4.0, 25.0)  # 100 J
        averages = acc.average_powers(horizon=50.0)
        assert averages["pe0"] == pytest.approx(0.1)  # idle only
        assert averages["pe1"] == pytest.approx(2.0)

    def test_extra_energy_is_what_if(self, acc):
        acc.record("pe0", 5.0, 10.0)
        with_candidate = acc.average_powers(100.0, extra={"pe0": 50.0})
        without = acc.average_powers(100.0)
        assert with_candidate["pe0"] == pytest.approx(without["pe0"] + 0.5)
        assert with_candidate["pe1"] == without["pe1"]
        # and the accumulator itself is untouched
        assert acc.energy("pe0") == pytest.approx(50.0)

    def test_negative_extra_rejected(self, acc):
        with pytest.raises(ReproError):
            acc.average_powers(10.0, extra={"pe0": -1.0})

    def test_zero_horizon_rejected(self, acc):
        with pytest.raises(ReproError):
            acc.average_power("pe0", 0.0)
        with pytest.raises(ReproError):
            acc.average_powers(0.0)

    def test_utilisation(self, acc):
        acc.record("pe0", 1.0, 30.0)
        assert acc.utilisation("pe0", 60.0) == pytest.approx(0.5)
        assert acc.utilisation("pe0", 10.0) == 1.0  # clamped

    def test_pe_names(self, acc):
        assert acc.pe_names() == ["pe0", "pe1"]
