"""Contract tests for the top-level public API surface."""

import importlib
import pkgutil

import pytest

import repro


def test_all_names_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_version_is_semver_ish():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_no_private_names_exported():
    private = [n for n in repro.__all__ if n.startswith("_") and n != "__version__"]
    assert private == ["__version__"] or private == []


def test_every_subpackage_importable():
    for module_info in pkgutil.iter_modules(repro.__path__):
        importlib.import_module(f"repro.{module_info.name}")


def test_subpackage_alls_resolve():
    for package_name in (
        "taskgraph",
        "library",
        "power",
        "thermal",
        "floorplan",
        "core",
        "cosynth",
        "analysis",
        "experiments",
        "extensions",
    ):
        module = importlib.import_module(f"repro.{package_name}")
        missing = [n for n in module.__all__ if not hasattr(module, n)]
        assert missing == [], f"repro.{package_name}: {missing}"


def test_docstrings_on_public_callables():
    """Deliverable (e): every public item carries documentation."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if callable(obj) and not isinstance(obj, type(repro)):
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
    assert undocumented == []


def test_errors_module_documented():
    from repro import errors

    for name in errors.__all__:
        assert getattr(errors, name).__doc__, name
