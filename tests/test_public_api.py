"""Contract tests for the top-level public API surface."""

import importlib
import pkgutil

import pytest

import repro


def test_all_names_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_version_is_semver_ish():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_no_private_names_exported():
    private = [n for n in repro.__all__ if n.startswith("_") and n != "__version__"]
    assert private == ["__version__"] or private == []


def test_every_subpackage_importable():
    for module_info in pkgutil.iter_modules(repro.__path__):
        importlib.import_module(f"repro.{module_info.name}")


def test_subpackage_alls_resolve():
    for package_name in (
        "taskgraph",
        "library",
        "power",
        "thermal",
        "floorplan",
        "core",
        "cosynth",
        "analysis",
        "experiments",
        "extensions",
    ):
        module = importlib.import_module(f"repro.{package_name}")
        missing = [n for n in module.__all__ if not hasattr(module, n)]
        assert missing == [], f"repro.{package_name}: {missing}"


def test_docstrings_on_public_callables():
    """Deliverable (e): every public item carries documentation."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if callable(obj) and not isinstance(obj, type(repro)):
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
    assert undocumented == []


def test_errors_module_documented():
    from repro import errors

    for name in errors.__all__:
        assert getattr(errors, name).__doc__, name


#: Symbols the pre-flow API exported; they must all keep importing.
LEGACY_SURFACE = [
    "platform_flow",
    "power_aware_cosynthesis",
    "thermal_aware_cosynthesis",
    "CoSynthesisFramework",
    "reclaim_slack",
    "schedule_conditional",
    "policy_by_name",
    "POLICY_NAMES",
    "PlatformResult",
    "CoSynthesisResult",
    "DVFSResult",
    "explore_allocations",
    "pareto_front",
]


def test_legacy_surface_still_exported():
    missing = [name for name in LEGACY_SURFACE if not hasattr(repro, name)]
    assert missing == []
    assert set(LEGACY_SURFACE) <= set(repro.__all__)


class TestLegacyWrappersMatchFacade:
    """Deprecated-but-working: legacy entry points == flow facade on Bm1."""

    @pytest.fixture(scope="class")
    def bm1(self):
        graph = repro.benchmark("Bm1")
        return graph, repro.library_for_graph(graph)

    def test_platform_flow_matches_facade(self, bm1):
        graph, library = bm1
        legacy = repro.platform_flow(graph, library, repro.ThermalPolicy())
        facade = repro.run_flow(repro.platform_spec("Bm1", policy="thermal"))
        assert legacy.evaluation == facade.evaluation
        assert legacy.architecture.name == facade.architecture.name

    def test_reclaim_slack_matches_facade(self, bm1):
        graph, library = bm1
        schedule = repro.platform_flow(
            graph, library, repro.ThermalPolicy()
        ).schedule
        legacy = repro.reclaim_slack(schedule)
        facade = repro.run_flow(
            repro.platform_spec(
                "Bm1", policy="thermal", dvfs=repro.DVFSSpec(enabled=True)
            )
        )
        assert facade.dvfs is not None
        assert legacy.energy_after == pytest.approx(facade.dvfs.energy_after)
        assert legacy.makespan_after == pytest.approx(facade.dvfs.makespan_after)

    def test_thermal_aware_cosynthesis_matches_facade(self, bm1):
        from repro.cosynth.framework import CoSynthesisConfig
        from repro.floorplan.genetic import GeneticConfig

        graph, library = bm1
        fast = CoSynthesisConfig(
            max_pes=3,
            screening_keep=2,
            refine_iterations=1,
            genetic_config=GeneticConfig(population_size=8, generations=4),
        )
        legacy = repro.thermal_aware_cosynthesis(graph, library, config=fast)
        facade = repro.run_flow(
            repro.cosynthesis_spec(
                "Bm1", policy="thermal", config=fast, final_cost="thermal"
            )
        )
        assert legacy.evaluation == facade.evaluation

    def test_schedule_conditional_matches_facade(self):
        ctg = repro.conditional_benchmark("video-frame")
        from repro.library.presets import (
            generate_technology_library,
            stable_library_seed,
        )

        library = generate_technology_library(
            sorted({t.task_type for t in ctg.tasks()}),
            seed=stable_library_seed(ctg.name),
            name=f"library-{ctg.name}",
        )
        architecture = repro.default_platform()
        floorplan = repro.platform_floorplan(architecture)
        legacy = repro.schedule_conditional(
            ctg, architecture, library, repro.ThermalPolicy(), floorplan=floorplan
        )
        facade = repro.run_flow(
            repro.FlowSpec(
                flow="platform",
                graph=repro.GraphSourceSpec(kind="conditional", name="video-frame"),
                conditional=repro.ConditionalSpec(enabled=True),
            )
        )
        assert facade.conditional is not None
        assert legacy.worst_makespan == pytest.approx(
            facade.conditional.worst_makespan
        )
        assert legacy.expected_total_power == pytest.approx(
            facade.conditional.expected_total_power
        )
