"""Tests for the DSE driver: determinism, checkpointing, resume."""

import json

import pytest

from repro.dse import (
    DseConfig,
    ParetoArchive,
    build_strategy,
    run_dse,
    strategy_names,
    trajectory_line,
)
from repro.dse.driver import DSE_SUITE
from repro.dse.evaluate import EvaluatedCandidate, OBJECTIVE_NAMES
from repro.dse.strategies import STRATEGIES, StrategyContext, scalar_cost
from repro.errors import DseError
from repro.results.store import ResultStore

SMALL = dict(
    benchmark="Bm1",
    seed=7,
    generations=2,
    population=3,
    policies=("thermal", "heuristic3"),
    dvfs_options=(False,),
)


def run_files(out_dir):
    return {
        name: (out_dir / name).read_bytes()
        for name in ("archive.json", "trajectory.jsonl", "state.json")
    }


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
class TestDseConfig:
    def test_round_trip(self):
        config = DseConfig(strategy="greedy", **SMALL)
        assert DseConfig.from_dict(config.to_dict()) == config

    def test_unknown_strategy_is_rejected_at_build(self):
        from repro.errors import FlowError

        with pytest.raises(FlowError, match="dse strategy"):
            build_strategy(
                "gradient-descent", StrategyContext(seed=0, population=2)
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(DseError):
            DseConfig(policies=())

    def test_registry_lists_all_strategies(self):
        assert list(strategy_names()) == [
            "random", "greedy", "annealing", "nsga2",
        ]
        for name in strategy_names():
            assert name in STRATEGIES


# ----------------------------------------------------------------------
# determinism / checkpoint / resume
# ----------------------------------------------------------------------
class TestRunDse:
    def test_same_seed_byte_identical(self, tmp_path):
        config = DseConfig(strategy="nsga2", **SMALL)
        result_a = run_dse(config, tmp_path / "a")
        result_b = run_dse(config, tmp_path / "b")
        assert run_files(tmp_path / "a") == run_files(tmp_path / "b")
        assert result_a.front == result_b.front
        assert result_a.evaluations == result_b.evaluations

    def test_kill_and_resume_byte_identical(self, tmp_path):
        config = DseConfig(strategy="nsga2", **SMALL)
        run_dse(config, tmp_path / "straight")
        reference = run_files(tmp_path / "straight")

        # "kill" after one generation, then resume to completion
        partial = run_dse(
            config, tmp_path / "resumed", stop_after_generations=1
        )
        assert partial.generations == 1
        assert json.loads(
            (tmp_path / "resumed" / "state.json").read_text()
        ) == {"generations": 1}
        resumed = run_dse(config, tmp_path / "resumed")
        assert resumed.generations == config.generations
        assert run_files(tmp_path / "resumed") == reference

    def test_resume_of_finished_run_replays_without_evaluating(self, tmp_path):
        config = DseConfig(strategy="greedy", **SMALL)
        first = run_dse(config, tmp_path / "run")
        replay = run_dse(config, tmp_path / "run")
        assert run_files(tmp_path / "run")["archive.json"]
        assert replay.front == first.front
        # replay served everything from the store: no new result records
        store = ResultStore(tmp_path / "run" / "store")
        hashes = {entry["spec_hash"] for entry in store.index(suite=DSE_SUITE)}
        assert len(hashes) == len(store.index(suite=DSE_SUITE))

    def test_config_mismatch_rejected(self, tmp_path):
        run_dse(
            DseConfig(strategy="random", **SMALL),
            tmp_path / "run",
            stop_after_generations=1,
        )
        with pytest.raises(DseError, match="config"):
            run_dse(DseConfig(strategy="greedy", **SMALL), tmp_path / "run")

    @pytest.mark.parametrize("strategy", ["random", "greedy", "annealing"])
    def test_every_strategy_is_deterministic(self, strategy, tmp_path):
        config = DseConfig(
            strategy=strategy,
            benchmark="Bm1",
            seed=3,
            generations=2,
            population=2,
            dvfs_options=(False,),
        )
        run_dse(config, tmp_path / "a")
        run_dse(config, tmp_path / "b")
        assert run_files(tmp_path / "a") == run_files(tmp_path / "b")

    def test_trajectory_and_archive_structure(self, tmp_path):
        config = DseConfig(strategy="random", **SMALL)
        result = run_dse(config, tmp_path / "run")
        lines = (
            (tmp_path / "run" / "trajectory.jsonl").read_text().splitlines()
        )
        assert len(lines) == config.generations * config.population
        for line in lines:
            entry = json.loads(line)
            assert set(entry) == {
                "candidate", "generation", "objectives", "slot", "spec_hash",
            }
            assert len(entry["objectives"]) == len(OBJECTIVE_NAMES)
            assert all(
                isinstance(v, float) for v in entry["objectives"]
            )
        payload = json.loads((tmp_path / "run" / "archive.json").read_text())
        assert payload["objectives"] == list(OBJECTIVE_NAMES)
        assert payload["generations"] == config.generations
        assert payload["evaluations"] == len(lines)
        assert payload["front"] == [
            entry.to_dict() for entry in result.front
        ]
        assert result.thermal_stats["incremental"] >= 0


# ----------------------------------------------------------------------
# archive mechanics
# ----------------------------------------------------------------------
def make_evaluated(slot, makespan, peak, energy):
    candidate = {
        "benchmark": "Bm1", "catalogue": "default", "pe": None, "count": 1,
        "policy": "thermal", "dvfs": False,
        "placement": [["pe0", 0.0, 0.0, 2.0, 2.0]],
    }
    return EvaluatedCandidate.from_dict({
        "candidate": candidate,
        "spec_hash": f"hash{slot}",
        "objectives": [makespan, peak, energy],
        "generation": 0,
        "slot": slot,
    })


class TestParetoArchive:
    def test_front_drops_dominated_keeps_order(self):
        archive = ParetoArchive()
        archive.extend([
            make_evaluated(0, 10.0, 80.0, 5.0),
            make_evaluated(1, 12.0, 90.0, 6.0),   # dominated by slot 0
            make_evaluated(2, 8.0, 95.0, 5.5),    # trade-off: survives
        ])
        front = archive.front()
        assert [entry.slot for entry in front] == [0, 2]

    def test_trajectory_line_is_sorted_and_compact(self):
        entry = make_evaluated(0, 10.0, 80.0, 5.0)
        line = trajectory_line(entry)
        assert json.loads(line) == entry.to_dict()
        assert line.index('"candidate"') < line.index('"spec_hash"')

    def test_scalar_cost_is_objective_product(self):
        assert scalar_cost((2.0, 3.0, 4.0)) == pytest.approx(24.0)
