"""Tests for schedule evaluation metrics."""

import pytest

from repro.analysis.metrics import evaluate_schedule
from repro.core.scheduler import schedule_graph
from repro.errors import ReproError
from repro.floorplan.platform import platform_floorplan
from repro.library.presets import default_platform
from repro.thermal.hotspot import HotSpotModel


@pytest.fixture
def scheduled_bm1(bm1, bm1_library):
    platform = default_platform()
    schedule = schedule_graph(bm1, platform, bm1_library)
    plan = platform_floorplan(platform)
    return schedule, plan


class TestEvaluateSchedule:
    def test_requires_exactly_one_model_source(self, scheduled_bm1):
        schedule, plan = scheduled_bm1
        model = HotSpotModel(plan)
        with pytest.raises(ReproError):
            evaluate_schedule(schedule)
        with pytest.raises(ReproError):
            evaluate_schedule(schedule, floorplan=plan, hotspot=model)

    def test_floorplan_and_hotspot_paths_agree(self, scheduled_bm1):
        schedule, plan = scheduled_bm1
        by_plan = evaluate_schedule(schedule, floorplan=plan)
        by_model = evaluate_schedule(schedule, hotspot=HotSpotModel(plan))
        assert by_plan.max_temperature == pytest.approx(by_model.max_temperature)
        assert by_plan.avg_temperature == pytest.approx(by_model.avg_temperature)

    def test_fields_consistent(self, scheduled_bm1):
        schedule, plan = scheduled_bm1
        evaluation = evaluate_schedule(schedule, floorplan=plan)
        assert evaluation.benchmark == "Bm1"
        assert evaluation.policy == schedule.policy_name
        assert evaluation.makespan == pytest.approx(schedule.makespan)
        assert evaluation.total_power == pytest.approx(
            schedule.total_average_power
        )
        assert evaluation.max_temperature >= evaluation.avg_temperature
        assert evaluation.meets_deadline == schedule.meets_deadline
        assert evaluation.slack == pytest.approx(schedule.slack)

    def test_temperatures_above_ambient(self, scheduled_bm1):
        schedule, plan = scheduled_bm1
        evaluation = evaluate_schedule(schedule, floorplan=plan)
        from repro.units import AMBIENT_C

        assert evaluation.avg_temperature > AMBIENT_C

    def test_as_row_keys(self, scheduled_bm1):
        schedule, plan = scheduled_bm1
        row = evaluate_schedule(schedule, floorplan=plan).as_row()
        for key in ("benchmark", "policy", "total_pow", "max_temp", "avg_temp"):
            assert key in row

    def test_pe_to_block_mapping(self, scheduled_bm1, bm1):
        """Evaluation works when floorplan block names differ from PE names."""
        schedule, plan = scheduled_bm1
        from repro.floorplan.geometry import Block, Floorplan

        renamed = Floorplan(
            Block(f"blk_{b.name}", b.rect) for b in plan
        )
        mapping = {pe: f"blk_{pe}" for pe in plan.block_names()}
        direct = evaluate_schedule(schedule, floorplan=plan)
        mapped = evaluate_schedule(
            schedule, floorplan=renamed, pe_to_block=mapping
        )
        assert mapped.max_temperature == pytest.approx(direct.max_temperature)
        assert set(mapped.pe_temperatures) == set(direct.pe_temperatures)
