"""Tests for floorplan geometry."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.geometry import Block, Floorplan, Rect


class TestRect:
    def test_basic_properties(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.x2 == 4.0
        assert rect.y2 == 6.0
        assert rect.area == 12.0
        assert rect.center == (2.5, 4.0)

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(FloorplanError):
            Rect(0, 0, 0.0, 1.0)
        with pytest.raises(FloorplanError):
            Rect(0, 0, 1.0, -1.0)

    def test_aspect_ratio(self):
        assert Rect(0, 0, 8.0, 2.0).aspect_ratio == pytest.approx(4.0)
        assert Rect(0, 0, 2.0, 8.0).aspect_ratio == pytest.approx(4.0)
        assert Rect(0, 0, 3.0, 3.0).aspect_ratio == pytest.approx(1.0)

    def test_overlap_detection(self):
        a = Rect(0, 0, 4, 4)
        assert a.overlaps(Rect(2, 2, 4, 4))
        assert not a.overlaps(Rect(4, 0, 4, 4))  # abutting, no interior overlap
        assert not a.overlaps(Rect(10, 10, 1, 1))
        assert not a.overlaps(Rect(4, 4, 2, 2))  # corner touch

    def test_shared_edge_vertical_contact(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(4, 1, 4, 6)
        assert a.shared_edge_length(b) == pytest.approx(3.0)
        assert b.shared_edge_length(a) == pytest.approx(3.0)

    def test_shared_edge_horizontal_contact(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 4, 4, 2)
        assert a.shared_edge_length(b) == pytest.approx(2.0)

    def test_shared_edge_no_contact(self):
        a = Rect(0, 0, 4, 4)
        assert a.shared_edge_length(Rect(5, 0, 2, 2)) == 0.0

    def test_shared_edge_corner_touch_is_zero(self):
        a = Rect(0, 0, 4, 4)
        assert a.shared_edge_length(Rect(4, 4, 2, 2)) == 0.0

    def test_manhattan_distance(self):
        a = Rect(0, 0, 2, 2)  # centre (1, 1)
        b = Rect(4, 6, 2, 2)  # centre (5, 7)
        assert a.manhattan_distance(b) == pytest.approx(10.0)

    def test_translated_and_rotated(self):
        rect = Rect(1, 1, 2, 3)
        moved = rect.translated(1.0, -1.0)
        assert (moved.x, moved.y) == (2.0, 0.0)
        turned = rect.rotated()
        assert (turned.w, turned.h) == (3.0, 2.0)


class TestFloorplan:
    def test_add_and_lookup(self, two_block_plan):
        assert len(two_block_plan) == 2
        assert two_block_plan.block("left").rect.w == 6.0
        assert "left" in two_block_plan

    def test_duplicate_name_rejected(self, two_block_plan):
        with pytest.raises(FloorplanError):
            two_block_plan.place("left", 20, 20, 1, 1)

    def test_unknown_block_raises(self, two_block_plan):
        with pytest.raises(FloorplanError):
            two_block_plan.block("ghost")

    def test_bounding_box(self, two_block_plan):
        box = two_block_plan.bounding_box()
        assert (box.w, box.h) == (12.0, 6.0)

    def test_empty_bounding_box_raises(self):
        with pytest.raises(FloorplanError):
            Floorplan().bounding_box()

    def test_die_size_empty(self):
        assert Floorplan().die_size() == (0.0, 0.0)

    def test_areas(self, two_block_plan):
        assert two_block_plan.die_area == pytest.approx(72.0)
        assert two_block_plan.block_area == pytest.approx(72.0)
        assert two_block_plan.whitespace_fraction == pytest.approx(0.0)

    def test_whitespace(self):
        plan = Floorplan()
        plan.place("a", 0, 0, 2, 2)
        plan.place("b", 4, 4, 2, 2)
        assert plan.whitespace_fraction == pytest.approx(1.0 - 8.0 / 36.0)

    def test_adjacency(self, two_block_plan):
        contacts = two_block_plan.adjacency()
        assert contacts == {("left", "right"): pytest.approx(6.0)}

    def test_adjacency_no_contact(self):
        plan = Floorplan()
        plan.place("a", 0, 0, 2, 2)
        plan.place("b", 5, 5, 2, 2)
        assert plan.adjacency() == {}

    def test_validate_catches_overlap(self):
        plan = Floorplan()
        plan.place("a", 0, 0, 4, 4)
        plan.place("b", 2, 2, 4, 4)
        with pytest.raises(FloorplanError):
            plan.validate()

    def test_validate_ok_for_abutting(self, two_block_plan):
        two_block_plan.validate()

    def test_wirelength(self, two_block_plan):
        # centres (3,3) and (9,3): manhattan 6
        nets = [("left", "right", 2.0)]
        assert two_block_plan.total_wirelength(nets) == pytest.approx(12.0)

    def test_normalised_moves_to_origin(self):
        plan = Floorplan()
        plan.place("a", 5, 7, 2, 2)
        normal = plan.normalised()
        assert normal.block("a").rect.x == 0.0
        assert normal.block("a").rect.y == 0.0
        # original untouched
        assert plan.block("a").rect.x == 5.0

    def test_normalised_empty(self):
        assert len(Floorplan().normalised()) == 0

    def test_block_requires_name(self):
        with pytest.raises(FloorplanError):
            Block("", Rect(0, 0, 1, 1))
