"""Tests for the co-synthesis framework and platform flow (Figure 1)."""

import pytest

from repro.core.heuristics import (
    BaselinePolicy,
    TaskEnergyPolicy,
    ThermalPolicy,
)
from repro.cosynth.framework import (
    CoSynthesisConfig,
    CoSynthesisFramework,
    platform_flow,
    power_aware_cosynthesis,
    thermal_aware_cosynthesis,
)
from repro.errors import CoSynthesisError
from repro.floorplan.genetic import GeneticConfig

#: A deliberately small search so framework tests stay fast.
FAST = CoSynthesisConfig(
    max_pes=3,
    screening_keep=3,
    refine_iterations=1,
    genetic_config=GeneticConfig(population_size=8, generations=5),
)


class TestPowerAwareCosynthesis:
    def test_returns_complete_design(self, bm1, bm1_library):
        result = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        result.schedule.validate(bm1_library)
        result.floorplan.validate()
        assert set(result.floorplan.block_names()) >= {
            pe.name for pe in result.architecture
        }
        assert result.meets_deadline

    def test_search_diagnostics(self, bm1, bm1_library):
        result = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        assert result.candidates_screened > result.candidates_evaluated
        assert result.candidates_evaluated <= FAST.screening_keep
        assert len(result.screening_rows) == result.candidates_screened

    def test_deterministic(self, bm1, bm1_library):
        a = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        b = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        assert a.architecture.name == b.architecture.name
        assert a.evaluation.total_power == pytest.approx(b.evaluation.total_power)

    def test_default_policy_is_h3(self, bm1, bm1_library):
        result = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        assert result.schedule.policy_name == "heuristic3"


class TestThermalAwareCosynthesis:
    def test_returns_thermal_schedule(self, bm1, bm1_library):
        result = thermal_aware_cosynthesis(bm1, bm1_library, config=FAST)
        # the Figure-1a backoff may reduce the weight but keeps the policy
        assert result.schedule.policy_name == "thermal"
        assert result.meets_deadline

    def test_beats_power_aware_on_combined_temperature(self, bm1, bm1_library):
        """Table 2's shape on one benchmark (fast search).

        The reduced search budget can trade a fraction of a degree between
        the two temperature metrics, so the fast test asserts on the
        thermal flow's actual objective (max + avg); the full-budget
        benchmark harness shows wins on both metrics separately.
        """
        power = power_aware_cosynthesis(bm1, bm1_library, config=FAST)
        thermal = thermal_aware_cosynthesis(bm1, bm1_library, config=FAST)
        power_combined = (
            power.evaluation.max_temperature + power.evaluation.avg_temperature
        )
        thermal_combined = (
            thermal.evaluation.max_temperature
            + thermal.evaluation.avg_temperature
        )
        assert thermal_combined <= power_combined + 1e-9


class TestFrameworkMechanics:
    def test_strict_raises_when_deadline_impossible(self, bm1, bm1_library):
        impossible = bm1.with_deadline(1.0)
        framework = CoSynthesisFramework(config=FAST)
        with pytest.raises(CoSynthesisError):
            framework.run(
                impossible, bm1_library, TaskEnergyPolicy(), strict=True
            )

    def test_non_strict_returns_best_effort(self, bm1, bm1_library):
        impossible = bm1.with_deadline(1.0)
        framework = CoSynthesisFramework(config=FAST)
        result = framework.run(impossible, bm1_library, TaskEnergyPolicy())
        assert not result.meets_deadline

    def test_bad_config_rejected(self):
        with pytest.raises(CoSynthesisError):
            CoSynthesisConfig(screening_keep=0)
        with pytest.raises(CoSynthesisError):
            CoSynthesisConfig(refine_iterations=0)


class TestPlatformFlow:
    def test_default_platform_is_four_identical(self, bm1, bm1_library):
        result = platform_flow(bm1, bm1_library, BaselinePolicy())
        assert len(result.architecture) == 4
        assert len(set(pe.type_name for pe in result.architecture)) == 1

    def test_all_policies_meet_deadlines(self, bm1, bm1_library):
        for policy in (BaselinePolicy(), TaskEnergyPolicy(), ThermalPolicy()):
            result = platform_flow(bm1, bm1_library, policy)
            assert result.meets_deadline
            result.schedule.validate(bm1_library)

    def test_thermal_beats_h3_on_platform(self, bm1, bm1_library):
        """Table 3's shape on one benchmark."""
        power = platform_flow(bm1, bm1_library, TaskEnergyPolicy())
        thermal = platform_flow(bm1, bm1_library, ThermalPolicy())
        assert (
            thermal.evaluation.avg_temperature
            < power.evaluation.avg_temperature
        )
        assert (
            thermal.evaluation.max_temperature
            < power.evaluation.max_temperature
        )

    def test_custom_architecture(self, bm1, bm1_library):
        from repro.library.presets import default_platform

        result = platform_flow(
            bm1, bm1_library, BaselinePolicy(), architecture=default_platform(2)
        )
        assert len(result.architecture) == 2

    def test_evaluation_consistency(self, bm1, bm1_library):
        result = platform_flow(bm1, bm1_library, BaselinePolicy())
        evaluation = result.evaluation
        assert evaluation.total_power == pytest.approx(
            sum(evaluation.pe_powers.values())
        )
        assert evaluation.max_temperature == pytest.approx(
            max(evaluation.pe_temperatures.values())
        )
