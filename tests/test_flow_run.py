"""The Flow facade: equivalence with legacy entry points, registries,
post-passes, and the acceptance round-trip (spec -> json -> spec -> run).
"""

import pytest

from repro import (
    benchmark,
    library_for_graph,
    platform_flow,
    policy_by_name,
)
from repro.cosynth.framework import CoSynthesisConfig, CoSynthesisFramework
from repro.errors import FlowError, SchedulingError
from repro.extensions.dvfs import reclaim_slack
from repro.flow import (
    ConditionalSpec,
    DVFSSpec,
    Flow,
    FloorplanSpec,
    FlowSpec,
    GraphSourceSpec,
    LeakageSpec,
    PolicySpec,
    ThermalSpec,
    cosynthesis_spec,
    platform_spec,
    register_flow,
    run_flow,
)
from repro.flow.registry import FLOWS, Registry
from repro.floorplan.genetic import GeneticConfig

FAST = CoSynthesisConfig(
    max_pes=3,
    screening_keep=2,
    refine_iterations=1,
    genetic_config=GeneticConfig(population_size=8, generations=4),
)


def round_trip(spec: FlowSpec) -> FlowSpec:
    return FlowSpec.from_json(spec.to_json())


@pytest.fixture(scope="module")
def bm1():
    graph = benchmark("Bm1")
    return graph, library_for_graph(graph)


class TestPlatformEquivalence:
    """Acceptance: byte-identical evaluations vs the legacy platform flow."""

    @pytest.mark.parametrize("policy", ["baseline", "heuristic3", "thermal"])
    def test_platform_flow_equivalence_bm1(self, bm1, policy):
        graph, library = bm1
        legacy = platform_flow(graph, library, policy_by_name(policy))
        result = Flow().run(round_trip(platform_spec("Bm1", policy=policy)))
        assert result.evaluation == legacy.evaluation

    @pytest.mark.parametrize("name", ["Bm2", "Bm3", "Bm4"])
    def test_platform_flow_equivalence_suite(self, name):
        graph = benchmark(name)
        library = library_for_graph(graph)
        legacy = platform_flow(graph, library, policy_by_name("thermal"))
        result = run_flow(round_trip(platform_spec(name, policy="thermal")))
        assert result.evaluation == legacy.evaluation

    def test_result_carries_provenance_and_timings(self):
        result = run_flow(platform_spec("Bm1", policy="heuristic3"))
        assert result.provenance["flow"] == "platform"
        assert len(result.provenance["spec_hash"]) == 20
        assert set(result.timings) >= {"build", "run"}
        assert result.diagnostics["hotspot_queries"] >= 0
        row = result.as_row()
        assert row["flow"] == "platform"
        assert row["benchmark"] == "Bm1"


class TestCosynthesisEquivalence:
    def test_cosynthesis_equivalence_fast(self, bm1):
        graph, library = bm1
        legacy = CoSynthesisFramework(config=FAST).run(
            graph, library, policy_by_name("heuristic3")
        )
        spec = cosynthesis_spec("Bm1", policy="heuristic3", config=FAST)
        result = run_flow(round_trip(spec))
        assert result.evaluation == legacy.evaluation
        assert result.architecture.name == legacy.architecture.name
        assert (
            result.diagnostics["candidates_screened"] == legacy.candidates_screened
        )

    def test_cosynthesis_rejects_shared_bus(self):
        from repro.flow.spec import CommSpec

        spec = cosynthesis_spec("Bm1", config=FAST).with_(
            comm=CommSpec(kind="shared-bus")
        )
        with pytest.raises(FlowError):
            run_flow(spec)

    def test_cosynthesis_honours_every_genetic_knob(self, bm1):
        """A mutated GA config must change what actually runs (nothing
        silently dropped), and stay identical to the legacy path."""
        graph, library = bm1
        tweaked = CoSynthesisConfig(
            max_pes=3,
            screening_keep=2,
            refine_iterations=1,
            genetic_config=GeneticConfig(
                population_size=8, generations=4, mutation_rate=0.9,
                elite_count=4,
            ),
        )
        legacy = CoSynthesisFramework(config=tweaked).run(
            graph, library, policy_by_name("thermal")
        )
        facade = run_flow(
            round_trip(cosynthesis_spec("Bm1", policy="thermal", config=tweaked))
        )
        assert facade.evaluation == legacy.evaluation

    def test_cosynthesis_rejects_unsupported_settings(self):
        with pytest.raises(FlowError):
            run_flow(
                cosynthesis_spec("Bm1", config=FAST).with_(
                    thermal=ThermalSpec(solver="gridmodel")
                )
            )
        from repro.flow import ArchitectureSpec

        with pytest.raises(FlowError):
            run_flow(
                cosynthesis_spec("Bm1", config=FAST).with_(
                    architecture=ArchitectureSpec(count=2)
                )
            )
        with pytest.raises(FlowError):
            run_flow(
                cosynthesis_spec("Bm1", config=FAST).with_(
                    floorplan=FloorplanSpec(kind="annealing")
                )
            )


class TestPostPasses:
    def test_dvfs_pass_matches_legacy_reclaim(self, bm1):
        graph, library = bm1
        legacy_schedule = platform_flow(
            graph, library, policy_by_name("thermal")
        ).schedule
        legacy = reclaim_slack(legacy_schedule)
        result = run_flow(
            round_trip(
                platform_spec("Bm1", policy="thermal", dvfs=DVFSSpec(enabled=True))
            )
        )
        assert result.dvfs is not None
        assert result.dvfs.energy_after == pytest.approx(legacy.energy_after)
        assert result.dvfs.lowered_tasks == legacy.lowered_tasks
        assert result.schedule.makespan == pytest.approx(legacy.schedule.makespan)
        # the evaluation describes the retimed schedule
        assert result.evaluation.makespan == pytest.approx(legacy.schedule.makespan)

    def test_leakage_pass_produces_fixed_point(self):
        result = run_flow(
            platform_spec("Bm1", policy="thermal", leakage=LeakageSpec(enabled=True))
        )
        assert result.leakage is not None
        assert result.leakage.converged
        assert result.leakage.total_leakage > 0.0

    def test_conditional_flow_aggregates_scenarios(self):
        spec = FlowSpec(
            flow="platform",
            graph=GraphSourceSpec(kind="conditional", name="video-frame"),
            conditional=ConditionalSpec(enabled=True),
        )
        result = run_flow(round_trip(spec))
        assert result.conditional is not None
        assert len(result.conditional.results) == 2
        assert result.schedule.makespan == pytest.approx(
            result.conditional.worst_makespan
        )

    def test_conditional_guard_override_changes_expectation(self):
        base = FlowSpec(
            flow="platform",
            graph=GraphSourceSpec(kind="conditional", name="video-frame"),
            conditional=ConditionalSpec(enabled=True),
        )
        skewed = base.with_(
            conditional=ConditionalSpec(
                enabled=True,
                guard_probabilities=(
                    ("scene", "change", 0.9),
                    ("scene", "same", 0.1),
                ),
            )
        )
        a = run_flow(base).conditional.expected_total_power
        b = run_flow(skewed).conditional.expected_total_power
        assert a != pytest.approx(b)

    def test_partial_guard_override_rejected(self):
        from repro.errors import FlowSpecError

        spec = FlowSpec(
            flow="platform",
            graph=GraphSourceSpec(kind="conditional", name="video-frame"),
            conditional=ConditionalSpec(
                enabled=True,
                guard_probabilities=(("scene", "change", 0.3),),
            ),
        )
        with pytest.raises(FlowSpecError) as err:
            run_flow(spec)
        assert "re-specify" in str(err.value)

    def test_unknown_guard_override_rejected(self):
        from repro.errors import FlowSpecError

        spec = FlowSpec(
            flow="platform",
            graph=GraphSourceSpec(kind="conditional", name="video-frame"),
            conditional=ConditionalSpec(
                enabled=True,
                guard_probabilities=(("weather", "rain", 1.0),),
            ),
        )
        with pytest.raises(FlowSpecError):
            run_flow(spec)

    def test_conditional_flow_honours_comm_model(self):
        from repro.flow.spec import CommSpec

        base = FlowSpec(
            flow="platform",
            graph=GraphSourceSpec(kind="conditional", name="video-frame"),
            conditional=ConditionalSpec(enabled=True),
        )
        bus = base.with_(comm=CommSpec(kind="shared-bus"))
        free = run_flow(base).conditional.worst_makespan
        charged = run_flow(bus).conditional.worst_makespan
        assert charged > free

    def test_dvfs_on_conditional_flow_rejected(self):
        # statically detectable, so it fails at spec construction — not
        # after the whole conditional flow has already run
        with pytest.raises(FlowError):
            FlowSpec(
                flow="platform",
                graph=GraphSourceSpec(kind="conditional", name="video-frame"),
                conditional=ConditionalSpec(enabled=True),
                dvfs=DVFSSpec(enabled=True),
            )


class TestRegistries:
    def test_unknown_flow_kind_rejected(self):
        with pytest.raises(FlowError) as err:
            run_flow(FlowSpec(flow="quantum"))
        assert "platform" in str(err.value)

    def test_unknown_policy_keeps_scheduling_error_shape(self):
        with pytest.raises(SchedulingError):
            run_flow(platform_spec("Bm1", policy="voodoo"))

    def test_unknown_floorplanner_rejected(self):
        spec = platform_spec("Bm1").with_(floorplan=FloorplanSpec(kind="origami"))
        with pytest.raises(FlowError):
            run_flow(spec)

    def test_unknown_thermal_solver_rejected(self):
        spec = platform_spec("Bm1").with_(thermal=ThermalSpec(solver="icecube"))
        with pytest.raises(FlowError):
            run_flow(spec)

    def test_gridmodel_solver_runs(self):
        spec = platform_spec("Bm1", policy="thermal").with_(
            thermal=ThermalSpec(solver="gridmodel")
        )
        result = run_flow(spec)
        assert result.evaluation.max_temperature >= result.evaluation.avg_temperature
        assert result.diagnostics["hotspot_queries"] > 0

    def test_register_custom_flow(self):
        name = "echo-test-flow"

        def runner(spec, graph, library):
            # piggyback on the platform runner, then tag the outcome
            outcome = FLOWS.get("platform")(spec, graph, library)
            outcome.diagnostics["echo"] = True
            return outcome

        if name not in FLOWS:
            register_flow(name, runner)
        result = run_flow(platform_spec("Bm1").with_(flow=name))
        assert result.diagnostics["echo"] is True

    def test_registry_rejects_silent_shadowing(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        with pytest.raises(FlowError):
            registry.register("a", lambda: 2)

    def test_policy_weight_and_params_flow_through(self):
        result = run_flow(
            platform_spec("Bm1").with_(
                policy=PolicySpec(name="thermal-hybrid", weight=5.0, peak_fraction=1.0)
            )
        )
        assert result.evaluation.policy == "thermal-hybrid"

    def test_run_rejects_non_spec(self):
        with pytest.raises(FlowError):
            Flow().run({"flow": "platform"})


class TestAmbientOverride:
    def test_ambient_shifts_temperatures(self):
        cool = run_flow(platform_spec("Bm1", policy="heuristic3"))
        hot = run_flow(
            platform_spec("Bm1", policy="heuristic3").with_(
                thermal=ThermalSpec(ambient_c=60.0)
            )
        )
        assert hot.evaluation.max_temperature > cool.evaluation.max_temperature
