"""Tests for the technology library (WCET/WCPC store)."""

import pytest

from repro.errors import LibraryError, UnknownTaskTypeError
from repro.library.pe import Architecture, PEInstance, PEType
from repro.library.technology import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.task import Task


@pytest.fixture
def lib():
    library = TechnologyLibrary("test")
    library.add_entry("fft", "risc", wcet=40.0, wcpc=5.0)
    library.add_entry("fft", "dsp", wcet=20.0, wcpc=8.0)
    library.add_entry("fir", "risc", wcet=30.0, wcpc=4.0)
    return library


@pytest.fixture
def risc_pe():
    return PEInstance("pe0", PEType("risc", 6.0, 6.0))


class TestConstruction:
    def test_duplicate_entry_rejected(self, lib):
        with pytest.raises(LibraryError):
            lib.add_entry("fft", "risc", 10.0, 1.0)

    @pytest.mark.parametrize("wcet,wcpc", [(0.0, 5.0), (-1.0, 5.0), (10.0, 0.0), (10.0, -2.0)])
    def test_nonpositive_values_rejected(self, wcet, wcpc):
        library = TechnologyLibrary()
        with pytest.raises(LibraryError):
            library.add_entry("a", "b", wcet, wcpc)

    def test_empty_keys_rejected(self):
        library = TechnologyLibrary()
        with pytest.raises(LibraryError):
            library.add_entry("", "b", 1.0, 1.0)
        with pytest.raises(LibraryError):
            library.add_entry("a", "", 1.0, 1.0)

    def test_len_and_repr(self, lib):
        assert len(lib) == 3
        assert "entries=3" in repr(lib)


class TestQueries:
    def test_wcet_by_strings(self, lib):
        assert lib.wcet("fft", "risc") == 40.0
        assert lib.wcet("fft", "dsp") == 20.0

    def test_wcet_scales_with_task_weight(self, lib):
        heavy = Task("t", "fft", weight=2.0)
        assert lib.wcet(heavy, "risc") == pytest.approx(80.0)

    def test_power_ignores_weight(self, lib):
        heavy = Task("t", "fft", weight=2.0)
        assert lib.power(heavy, "risc") == pytest.approx(5.0)

    def test_energy_is_product(self, lib):
        heavy = Task("t", "fft", weight=2.0)
        assert lib.energy(heavy, "risc") == pytest.approx(80.0 * 5.0)

    def test_pe_instance_accepted(self, lib, risc_pe):
        assert lib.wcet("fft", risc_pe) == 40.0

    def test_pe_type_accepted(self, lib):
        assert lib.wcet("fft", PEType("dsp", 5.0, 5.0)) == 20.0

    def test_unknown_pair_raises(self, lib):
        with pytest.raises(UnknownTaskTypeError):
            lib.wcet("fir", "dsp")
        with pytest.raises(UnknownTaskTypeError):
            lib.power("ghost", "risc")

    def test_supports(self, lib):
        assert lib.supports("fft", "dsp")
        assert not lib.supports("fir", "dsp")

    def test_type_listings(self, lib):
        assert lib.task_types() == ["fft", "fir"]
        assert lib.pe_types() == ["dsp", "risc"]
        assert lib.supported_pe_types("fft") == ["dsp", "risc"]
        assert lib.supported_pe_types("fir") == ["risc"]

    def test_mean_and_min_wcet(self, lib):
        assert lib.mean_wcet("fft") == pytest.approx(30.0)
        assert lib.min_wcet("fft") == pytest.approx(20.0)
        heavy = Task("t", "fft", weight=3.0)
        assert lib.mean_wcet(heavy) == pytest.approx(90.0)

    def test_mean_wcet_unknown_type(self, lib):
        with pytest.raises(UnknownTaskTypeError):
            lib.mean_wcet("ghost")

    def test_entries_sorted(self, lib):
        rows = lib.entries()
        assert rows == sorted(rows)
        assert ("fft", "dsp", 20.0, 8.0) in rows


class TestCheckGraph:
    def test_feasible_graph_passes(self, lib):
        graph = TaskGraph("g", 100.0)
        graph.add("a", "fft")
        graph.add("b", "fir")
        arch = Architecture("a")
        arch.add_instance(PEType("risc", 6.0, 6.0))
        lib.check_graph(graph, arch)  # no raise

    def test_uncovered_task_fails(self, lib):
        graph = TaskGraph("g", 100.0)
        graph.add("a", "fir")  # fir only runs on risc
        arch = Architecture("a")
        arch.add_instance(PEType("dsp", 5.0, 5.0))
        with pytest.raises(UnknownTaskTypeError):
            lib.check_graph(graph, arch)
