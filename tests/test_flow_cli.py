"""The argparse CLI: subcommands, exit codes, legacy shorthand."""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import main as experiments_main
from repro.flow import platform_spec


class TestListCommand:
    def test_list_all_sections(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in (
            "flows:", "policies:", "floorplanners:", "thermal-solvers:",
            "benchmarks:", "experiments:",
        ):
            assert section in out

    def test_list_single_section(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "thermal-peak" in out
        assert "floorplanners:" not in out

    def test_list_unknown_section_exits_2(self, capsys):
        assert main(["list", "gizmos"]) == 2
        assert "available" in capsys.readouterr().err


class TestRunCommand:
    def test_run_prints_row(self, capsys):
        assert main(["run", "--benchmark", "Bm1", "--policy", "heuristic3"]) == 0
        out = capsys.readouterr().out
        assert "Bm1" in out and "heuristic3" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "--benchmark", "Bm1", "--policy", "baseline",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["row"]["benchmark"] == "Bm1"
        assert payload["spec"]["policy"]["name"] == "baseline"
        assert "spec_hash" in payload["provenance"]

    def test_run_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(platform_spec("Bm2", policy="thermal").to_json())
        assert main(["run", "--spec", str(path)]) == 0
        assert "Bm2" in capsys.readouterr().out

    def test_run_save_spec(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "--benchmark", "Bm1", "--policy", "baseline",
                     "--save-spec", str(path)]) == 0
        capsys.readouterr()
        saved = json.loads(path.read_text())
        assert saved["policy"]["name"] == "baseline"

    def test_run_unknown_policy_exits_1(self, capsys):
        assert main(["run", "--benchmark", "Bm1", "--policy", "voodoo"]) == 1
        assert "unknown DC policy" in capsys.readouterr().err

    def test_run_cosynthesis_floorplanner_mismatch_exits_1(self, capsys):
        # regression: used to crash with a raw TypeError (duplicate
        # floorplan kwarg) before reaching the flow's own validation
        assert main(["run", "--flow", "cosynthesis", "--floorplanner",
                     "annealing"]) == 1
        assert "genetic" in capsys.readouterr().err

    def test_run_dvfs_flag(self, capsys):
        assert main(["run", "--benchmark", "Bm1", "--policy", "thermal",
                     "--dvfs"]) == 0
        assert "dvfs:" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_with_cache(self, tmp_path, capsys):
        argv = ["sweep", "--benchmarks", "Bm1", "--policies", "baseline",
                "heuristic3", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached" in first
        assert main(argv) == 0
        assert "2 cached" in capsys.readouterr().out

    def test_sweep_json_rows(self, capsys):
        assert main(["sweep", "--benchmarks", "Bm1", "--policies",
                     "baseline", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["benchmark"] == "Bm1"


class TestExperimentsCommand:
    def test_list_prints_ids(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["figure1", "table1", "table2", "table3"]

    def test_unknown_id_exits_2(self, capsys):
        assert main(["experiments", "tableX"]) == 2
        err = capsys.readouterr().err
        assert "tableX" in err and "table1" in err

    def test_legacy_bare_id_shorthand(self, capsys):
        # `python -m repro table3 ...` rewrites to the experiments
        # subcommand; --list short-circuits before anything heavy runs.
        assert main(["table3", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "table3" in out

    def test_runner_main_direct(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert capsys.readouterr().out.split() == [
            "figure1", "table1", "table2", "table3",
        ]
        assert experiments_main(["nope"]) == 2
        assert "available" in capsys.readouterr().err


class TestTopLevel:
    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for sub in ("run", "sweep", "experiments", "list"):
            assert sub in out

    def test_help_documents_subcommands(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        for sub in ("run", "sweep", "experiments", "list"):
            assert sub in out
