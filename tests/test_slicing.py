"""Tests for Polish-expression slicing floorplans."""

import random

import pytest

from repro.errors import SlicingError
from repro.floorplan.slicing import PolishExpression

DIMS = {"a": (4.0, 2.0), "b": (3.0, 3.0), "c": (2.0, 5.0)}


class TestConstruction:
    def test_initial_two_blocks(self):
        expr = PolishExpression.initial({"a": (2, 2), "b": (3, 3)})
        assert expr.operands() == ["a", "b"]
        assert len(expr.tokens) == 3

    def test_initial_order_respected(self):
        expr = PolishExpression.initial(DIMS, order=["c", "a", "b"])
        assert expr.operands() == ["c", "a", "b"]

    def test_initial_alternates_operators(self):
        expr = PolishExpression.initial(DIMS)
        operators = [t for t in expr.tokens if t in ("H", "V")]
        assert operators == ["V", "H"]

    def test_empty_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression.initial({})

    def test_unknown_operand_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression(["a", "zzz", "V"], {"a": (1, 1)})

    def test_balloting_violation_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression(["a", "V", "b"], DIMS)

    def test_operand_count_mismatch_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression(["a", "b"], DIMS)

    def test_duplicate_operand_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression(["a", "a", "V"], {"a": (1, 1)})

    def test_rotated_unknown_rejected(self):
        with pytest.raises(SlicingError):
            PolishExpression(["a", "b", "V"], DIMS, rotated={"zzz"})

    def test_single_block(self):
        expr = PolishExpression(["a"], {"a": (2, 3)})
        plan = expr.evaluate()
        assert plan.block("a").rect.w == 2.0


class TestEvaluation:
    def test_vertical_cut_side_by_side(self):
        expr = PolishExpression(["a", "b", "V"], DIMS)
        plan = expr.evaluate()
        a, b = plan.block("a").rect, plan.block("b").rect
        assert a.x == 0.0 and b.x == pytest.approx(4.0)
        assert plan.die_size() == (pytest.approx(7.0), pytest.approx(3.0))

    def test_horizontal_cut_stacked(self):
        expr = PolishExpression(["a", "b", "H"], DIMS)
        plan = expr.evaluate()
        a, b = plan.block("a").rect, plan.block("b").rect
        assert a.y == 0.0 and b.y == pytest.approx(2.0)
        assert plan.die_size() == (pytest.approx(4.0), pytest.approx(5.0))

    def test_three_block_nested(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        plan = expr.evaluate()
        # (a|b) stacked under c: width max(7,2)=7, height 3+5=8
        assert plan.die_size() == (pytest.approx(7.0), pytest.approx(8.0))

    def test_no_overlaps_ever(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        expr.evaluate().validate()

    def test_rotation_swaps_dims(self):
        expr = PolishExpression(["a"], {"a": (4.0, 2.0)}, rotated={"a"})
        rect = expr.evaluate().block("a").rect
        assert (rect.w, rect.h) == (2.0, 4.0)

    def test_die_area(self):
        expr = PolishExpression(["a", "b", "V"], DIMS)
        assert expr.die_area() == pytest.approx(21.0)


class TestNormalization:
    def test_initial_is_normalized(self):
        assert PolishExpression.initial(DIMS).is_normalized()

    def test_adjacent_same_operator_not_normalized(self):
        expr = PolishExpression(["a", "b", "c", "V", "V"], DIMS)
        assert not expr.is_normalized()

    def test_same_operator_separated_by_operand_is_normalized(self):
        # "a b V c V" encodes a three-block row uniquely: the V operators
        # are not adjacent in the string, so the expression is normalized
        expr = PolishExpression(["a", "b", "V", "c", "V"], DIMS)
        assert expr.is_normalized()

    def test_alternating_operators_normalized(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        assert expr.is_normalized()


class TestMoves:
    def test_m1_swaps_adjacent_operands(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        swapped = expr.move_swap_operands((0,))
        assert swapped.operands() == ["b", "a", "c"]
        # original untouched
        assert expr.operands() == ["a", "b", "c"]

    def test_m1_requires_two_operands(self):
        expr = PolishExpression(["a"], {"a": (1, 1)})
        with pytest.raises(SlicingError):
            expr.move_swap_operands(random.Random(1))

    def test_m2_complements_chain(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        flipped = expr.move_complement_chain(0)
        assert flipped.tokens[2] == "H"

    def test_m2_requires_operator(self):
        expr = PolishExpression(["a"], {"a": (1, 1)})
        with pytest.raises(SlicingError):
            expr.move_complement_chain(random.Random(1))

    def test_m3_preserves_validity(self):
        expr = PolishExpression(["a", "b", "V", "c", "H"], DIMS)
        moved = expr.move_swap_operand_operator(random.Random(3))
        moved._check_well_formed()
        assert moved.is_normalized()

    def test_rotate_toggle(self):
        expr = PolishExpression(["a", "b", "V"], DIMS)
        rotated = expr.move_rotate("a")
        assert "a" in rotated.rotated
        back = rotated.move_rotate("a")
        assert "a" not in back.rotated

    def test_rotate_unknown_block(self):
        expr = PolishExpression(["a", "b", "V"], DIMS)
        with pytest.raises(SlicingError):
            expr.move_rotate("zzz")

    def test_random_move_always_legal(self):
        rng = random.Random(7)
        expr = PolishExpression.initial(DIMS)
        for _ in range(50):
            expr = expr.random_move(rng)
            expr._check_well_formed()
            plan = expr.evaluate()
            plan.validate()
            assert set(plan.block_names()) == set(DIMS)

    def test_moves_preserve_total_block_area(self):
        rng = random.Random(11)
        expr = PolishExpression.initial(DIMS)
        expected = sum(w * h for w, h in DIMS.values())
        for _ in range(30):
            expr = expr.random_move(rng)
            assert expr.evaluate().block_area == pytest.approx(expected)
