"""Regression snapshots: pinned measured numbers for the headline flows.

The whole pipeline is seeded and deterministic, so these exact values must
reproduce on every run and platform (up to float tolerance).  If an
intentional change moves them — recalibration, algorithm fix — update the
snapshot *and* re-generate EXPERIMENTS.md in the same commit; an
unintentional drift here means nondeterminism or a behavioural regression.
"""

import pytest

from repro import (
    BaselinePolicy,
    TaskEnergyPolicy,
    ThermalPolicy,
    benchmark,
    library_for_graph,
    platform_flow,
)

#: policy -> (total_pow, max_temp, avg_temp, makespan) for Bm1 on the
#: default 4-PE platform.
BM1_PLATFORM_SNAPSHOT = {
    "baseline": (17.0192, 97.3246, 90.0645, 665.741),
    "heuristic3": (17.0192, 97.3223, 90.0639, 665.741),
    "thermal": (14.8728, 90.7812, 84.3768, 765.858),
}


@pytest.fixture(scope="module")
def bm1_workload():
    graph = benchmark("Bm1")
    return graph, library_for_graph(graph)


@pytest.mark.parametrize("policy_cls", [BaselinePolicy, TaskEnergyPolicy, ThermalPolicy])
def test_bm1_platform_snapshot(bm1_workload, policy_cls):
    graph, library = bm1_workload
    policy = policy_cls()
    evaluation = platform_flow(graph, library, policy).evaluation
    expected = BM1_PLATFORM_SNAPSHOT[policy.name]
    measured = (
        evaluation.total_power,
        evaluation.max_temperature,
        evaluation.avg_temperature,
        evaluation.makespan,
    )
    for got, want in zip(measured, expected):
        assert got == pytest.approx(want, abs=1e-3)


def test_snapshot_shape_is_the_papers():
    """The pinned numbers themselves encode the paper's Table-3 shape."""
    baseline = BM1_PLATFORM_SNAPSHOT["baseline"]
    thermal = BM1_PLATFORM_SNAPSHOT["thermal"]
    assert thermal[1] < baseline[1]  # cooler peak
    assert thermal[2] < baseline[2]  # cooler average
    assert thermal[3] <= 790.0       # within deadline


def test_benchmark_graphs_snapshot():
    """Benchmark topology is part of the reproduction contract."""
    graph = benchmark("Bm1")
    assert graph.task("t0").task_type == "type4"
    first_edges = [e.key for e in graph.edges()][:3]
    assert first_edges == [("t0", "t1"), ("t0", "t2"), ("t2", "t3")]
