"""Tests for the TaskGraph DAG."""

import pytest

from repro.errors import CycleError, TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.task import Task


def build_diamond():
    graph = TaskGraph("d", 100.0)
    for name in "abcd":
        graph.add(name, "type0")
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = TaskGraph("g", 10.0)
        assert len(graph) == 0
        assert graph.num_edges == 0

    def test_bad_deadline(self):
        with pytest.raises(TaskGraphError):
            TaskGraph("g", 0.0)
        with pytest.raises(TaskGraphError):
            TaskGraph("g", -5.0)

    def test_bad_name(self):
        with pytest.raises(TaskGraphError):
            TaskGraph("", 10.0)

    def test_duplicate_task_rejected(self):
        graph = TaskGraph("g", 10.0)
        graph.add("a", "t")
        with pytest.raises(TaskGraphError):
            graph.add("a", "t")

    def test_edge_unknown_endpoint_rejected(self):
        graph = TaskGraph("g", 10.0)
        graph.add("a", "t")
        with pytest.raises(TaskGraphError):
            graph.add_edge("a", "ghost")
        with pytest.raises(TaskGraphError):
            graph.add_edge("ghost", "a")

    def test_duplicate_edge_rejected(self):
        graph = TaskGraph("g", 10.0)
        graph.add("a", "t")
        graph.add("b", "t")
        graph.add_edge("a", "b")
        with pytest.raises(TaskGraphError):
            graph.add_edge("a", "b")

    def test_direct_cycle_rejected(self):
        graph = TaskGraph("g", 10.0)
        graph.add("a", "t")
        graph.add("b", "t")
        graph.add_edge("a", "b")
        with pytest.raises(CycleError):
            graph.add_edge("b", "a")

    def test_long_cycle_rejected(self):
        graph = TaskGraph("g", 10.0)
        for name in "abc":
            graph.add(name, "t")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        with pytest.raises(CycleError):
            graph.add_edge("c", "a")


class TestAccessors:
    def test_task_lookup(self):
        graph = build_diamond()
        assert graph.task("a").name == "a"
        with pytest.raises(TaskGraphError):
            graph.task("zzz")

    def test_membership_and_iteration(self):
        graph = build_diamond()
        assert "a" in graph and "zzz" not in graph
        assert [t.name for t in graph] == ["a", "b", "c", "d"]

    def test_adjacency(self):
        graph = build_diamond()
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("d") == ["b", "c"]
        assert graph.in_degree("a") == 0
        assert graph.out_degree("a") == 2

    def test_sources_and_sinks(self):
        graph = build_diamond()
        assert graph.sources() == ["a"]
        assert graph.sinks() == ["d"]

    def test_edge_lookup(self):
        graph = build_diamond()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")
        assert graph.edge("a", "b").key == ("a", "b")
        with pytest.raises(TaskGraphError):
            graph.edge("d", "a")


class TestAlgorithms:
    def test_topological_order_is_valid(self):
        graph = build_diamond()
        topo = graph.topological_order()
        position = {name: i for i, name in enumerate(topo)}
        for edge in graph.edges():
            assert position[edge.src] < position[edge.dst]

    def test_topological_order_deterministic_tie_break(self):
        graph = build_diamond()
        assert graph.topological_order() == ["a", "b", "c", "d"]

    def test_topo_cache_invalidation(self):
        graph = build_diamond()
        first = graph.topological_order()
        graph.add("e", "t")
        graph.add_edge("d", "e")
        assert graph.topological_order() != first

    def test_longest_path_to_sink_unit_costs(self):
        graph = build_diamond()
        dist = graph.longest_path_to_sink(lambda t: 1.0)
        assert dist == {"a": 3.0, "b": 2.0, "c": 2.0, "d": 1.0}

    def test_longest_path_from_source_unit_costs(self):
        graph = build_diamond()
        dist = graph.longest_path_from_source(lambda t: 1.0)
        assert dist == {"a": 1.0, "b": 2.0, "c": 2.0, "d": 3.0}

    def test_longest_path_respects_costs(self):
        graph = build_diamond()
        costs = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        dist = graph.longest_path_to_sink(lambda t: costs[t.name])
        assert dist["a"] == pytest.approx(12.0)  # a + b + d

    def test_negative_cost_rejected(self):
        graph = build_diamond()
        with pytest.raises(TaskGraphError):
            graph.longest_path_to_sink(lambda t: -1.0)

    def test_critical_path_length(self):
        graph = build_diamond()
        assert graph.critical_path_length(lambda t: 2.0) == pytest.approx(6.0)
        assert TaskGraph("e", 1.0).critical_path_length(lambda t: 1.0) == 0.0

    def test_ancestors_descendants(self):
        graph = build_diamond()
        assert graph.ancestors("d") == {"a", "b", "c"}
        assert graph.descendants("a") == {"b", "c", "d"}
        assert graph.ancestors("a") == frozenset()
        assert graph.descendants("d") == frozenset()

    def test_depth_levels(self):
        graph = build_diamond()
        assert graph.depth_levels() == {"a": 0, "b": 1, "c": 1, "d": 2}


class TestValidateAndCopy:
    def test_validate_passes_on_good_graph(self):
        build_diamond().validate()

    def test_copy_is_independent(self):
        graph = build_diamond()
        clone = graph.copy()
        clone.add("e", "t")
        assert "e" in clone and "e" not in graph
        assert clone.num_edges == graph.num_edges

    def test_with_deadline(self):
        graph = build_diamond()
        tightened = graph.with_deadline(50.0)
        assert tightened.deadline == 50.0
        assert graph.deadline == 100.0
        with pytest.raises(TaskGraphError):
            graph.with_deadline(0.0)

    def test_repr_mentions_counts(self):
        text = repr(build_diamond())
        assert "tasks=4" in text and "edges=4" in text
