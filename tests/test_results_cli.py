"""The ``results`` CLI subcommands and the --store wiring.

The acceptance-criteria test lives here: a stored ``paper-tables``
(platform subset) run must reproduce the legacy Table 3 byte-identically
through the store alone — no flow re-execution.
"""

import json

import pytest

from repro.cli import main
from repro.flow import run_many, spec_hash
from repro.results import ResultStore
from repro.scenarios import scenario_by_name


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """A store populated through the real CLI (sweep --store)."""
    path = tmp_path_factory.mktemp("results-cli") / "store"
    code = main([
        "sweep", "--benchmarks", "Bm1", "Bm2",
        "--policies", "heuristic3", "thermal",
        "--store", str(path),
    ])
    assert code == 0
    return path


class TestStoreWiring:
    def test_run_store_appends_one_record(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main(["run", "--benchmark", "Bm1", "--policy", "baseline",
                     "--store", str(path)]) == 0
        capsys.readouterr()
        runs = ResultStore(path).load()
        assert len(runs) == 1
        assert runs[0].get("spec.policy.name") == "baseline"

    def test_scenarios_run_tags_suite(self, tmp_path, capsys):
        path = tmp_path / "store"
        assert main(["scenarios", "run", "scaling-stress",
                     "--set", "graph.tasks=8", "--set", "graph.seed=1",
                     "--set", "architecture.count=2",
                     "--store", str(path)]) == 0
        capsys.readouterr()
        runs = ResultStore(path).load(suite="scaling-stress")
        assert len(runs) == 1

    def test_run_json_has_no_stringified_values(self, capsys):
        """default=str is gone: the payload parses and temperatures are
        real numbers, not their str() renderings."""
        assert main(["run", "--benchmark", "Bm1", "--policy", "thermal",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["metrics"]["max_temperature"], float)
        assert isinstance(payload["row"]["max_temp"], float)
        assert payload["schema_version"] == 2


class TestResultsCommands:
    def test_list_table_and_json(self, store_dir, capsys):
        assert main(["results", "list", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 records" in out and "heuristic3" in out
        assert main(["results", "list", "--store", str(store_dir),
                     "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["id"].split("-")[0] for e in entries] == [
            "r000000", "r000001", "r000002", "r000003",
        ]

    def test_list_filters(self, store_dir, capsys):
        assert main(["results", "list", "--store", str(store_dir),
                     "--flow", "cosynthesis", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_show_by_prefix(self, store_dir, capsys):
        assert main(["results", "show", "r000001",
                     "--store", str(store_dir)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["metrics"]["benchmark"] == "Bm1"

    def test_show_unknown_exits_2(self, store_dir, capsys):
        assert main(["results", "show", "zzz",
                     "--store", str(store_dir)]) == 2
        assert "no record" in capsys.readouterr().err

    def test_export_csv_is_deterministic(self, store_dir, capsys):
        assert main(["results", "export", "--store", str(store_dir),
                     "--format", "csv"]) == 0
        first = capsys.readouterr().out
        assert main(["results", "export", "--store", str(store_dir),
                     "--format", "csv"]) == 0
        assert capsys.readouterr().out == first
        assert first.splitlines()[0].startswith("benchmark,architecture,policy")
        assert len(first.splitlines()) == 5

    def test_export_to_file(self, store_dir, tmp_path, capsys):
        out = tmp_path / "rows.csv"
        assert main(["results", "export", "--store", str(store_dir),
                     "--format", "csv", "-o", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("benchmark,")

    def test_report_summary_exit_0(self, store_dir, capsys):
        assert main(["results", "report", "summary",
                     "--store", str(store_dir)]) == 0
        assert "4 runs" in capsys.readouterr().out

    def test_report_with_options(self, store_dir, capsys):
        assert main(["results", "report", "compare",
                     "--store", str(store_dir),
                     "--opt", "baseline=heuristic3",
                     "--opt", "metric=avg_temperature"]) == 0
        assert "thermal" in capsys.readouterr().out

    def test_report_unknown_analyzer_exits_2(self, store_dir, capsys):
        assert main(["results", "report", "gizmo",
                     "--store", str(store_dir)]) == 2
        assert "unknown analyzer" in capsys.readouterr().err

    def test_results_help_without_action(self, capsys):
        assert main(["results"]) == 0
        out = capsys.readouterr().out
        for action in ("list", "show", "export", "report"):
            assert action in out


class TestStoreReproducesLegacyTables:
    def test_table3_byte_identical_from_store_alone(self, tmp_path):
        """Acceptance: run the paper-tables platform subset into a store,
        then rebuild Table 3 purely from the stored records."""
        from repro.experiments.table3 import (
            format_table3,
            run_table3,
            table3_rows_from_records,
        )

        specs = [
            s for s in scenario_by_name("paper-tables").expand()
            if s.flow == "platform"
            and s.policy.name in ("heuristic3", "thermal")
        ]
        store = ResultStore(tmp_path / "store")
        run_many(specs, store=store, suite="paper-tables")

        import repro.core.scheduler as scheduler_module

        calls = {"n": 0}
        original = scheduler_module.ListScheduler.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        scheduler_module.ListScheduler.run = counting_run
        try:
            stored_rows = table3_rows_from_records(store.load())
        finally:
            scheduler_module.ListScheduler.run = original

        assert calls["n"] == 0  # reconstruction never re-executes a flow
        live_rows = run_table3()
        assert stored_rows == live_rows
        assert format_table3(stored_rows) == format_table3(live_rows)

    def test_missing_record_raises_a_named_gap(self, tmp_path):
        from repro.errors import ExperimentError
        from repro.experiments.table3 import table3_rows_from_records

        store = ResultStore(tmp_path / "empty")
        with pytest.raises(ExperimentError, match="Table 3 row"):
            table3_rows_from_records(store.load())
