"""Generated workload families: shapes, determinism, end-to-end flows.

The determinism contract is the scenario API's backbone: the same
``(family, tasks, seed)`` triple must produce an identical ``TaskGraph``
— and a spec naming it an identical ``spec_hash`` — in this process, in
a fresh process, and inside ``run_many`` pool workers.
"""

import json
import subprocess
import sys

import pytest

from repro.errors import FlowSpecError, TaskGraphError
from repro.flow import (
    FlowSpec,
    GraphSourceSpec,
    file_source,
    generated_source,
    platform_spec,
    run_flow,
    run_many,
    spec_hash,
)
from repro.taskgraph import (
    family_names,
    generate_family_graph,
    graph_to_dict,
    save_graph,
)

#: Snippet executed in fresh interpreters for the cross-process check.
_DETERMINISM_SNIPPET = """
import json
from repro.flow import platform_spec, generated_source, spec_hash
from repro.taskgraph import generate_family_graph, graph_to_dict

graph = generate_family_graph("layered", 18, seed=42)
spec = platform_spec(policy="thermal", graph=generated_source("layered", 18, seed=42))
print(json.dumps({"graph": graph_to_dict(graph), "hash": spec_hash(spec)}))
"""


class TestFamilies:
    def test_family_names(self):
        assert set(family_names()) == {"layered", "chain", "wide", "forkjoin"}

    @pytest.mark.parametrize("family", ["layered", "chain", "wide", "forkjoin"])
    def test_exact_task_count(self, family):
        graph = generate_family_graph(family, 23, seed=5)
        assert graph.num_tasks == 23
        assert graph.deadline == pytest.approx(23 * 40.0)

    def test_chain_is_a_chain(self):
        graph = generate_family_graph("chain", 12, seed=3)
        assert graph.num_edges == 11
        indegrees = {t.name: 0 for t in graph.tasks()}
        for edge in graph.edges():
            indegrees[edge.dst] += 1
        assert sorted(indegrees.values()) == [0] + [1] * 11

    def test_chain_rejects_width_and_density(self):
        with pytest.raises(TaskGraphError):
            generate_family_graph("chain", 10, seed=1, width=3)
        with pytest.raises(TaskGraphError):
            generate_family_graph("chain", 10, seed=1, density=2.0)

    def test_wide_has_fixed_width_levels(self):
        graph = generate_family_graph("wide", 25, seed=9, width=6)
        # depth counts: entry level + ceil(24 / 6) fixed-width levels
        from repro.taskgraph import graph_stats

        stats = graph_stats(graph)
        assert stats.depth == 1 + 4

    def test_ccr_scales_edge_data(self):
        low = generate_family_graph("layered", 20, seed=7, ccr=1.0)
        high = generate_family_graph("layered", 20, seed=7, ccr=4.0)
        low_mean = sum(e.data for e in low.edges()) / low.num_edges
        high_mean = sum(e.data for e in high.edges()) / high.num_edges
        # edge data rounds to 3 decimals, so the scaling is near-exact
        assert high_mean == pytest.approx(4.0 * low_mean, rel=1e-3)

    def test_deadline_slack_scales_deadline(self):
        tight = generate_family_graph("layered", 20, seed=7, deadline_slack=0.5)
        loose = generate_family_graph("layered", 20, seed=7, deadline_slack=2.0)
        assert loose.deadline == pytest.approx(4.0 * tight.deadline)

    def test_unknown_family_lists_available(self):
        with pytest.raises(TaskGraphError, match="available"):
            generate_family_graph("spaghetti", 10)

    def test_pattern_families_never_degrade_to_chains(self):
        """Small patterned graphs clamp their edge budget to the pattern
        capacity instead of silently falling back to a chain layering
        (which would invert the family)."""
        from repro.taskgraph import graph_stats

        tiny_fork = generate_family_graph("forkjoin", 4, seed=1)
        assert tiny_fork.num_tasks == 4
        assert graph_stats(tiny_fork).max_width == 3  # entry + fan-out-3
        tiny_wide = generate_family_graph("wide", 9, seed=1, width=8)
        assert graph_stats(tiny_wide).max_width == 8
        assert graph_stats(tiny_wide).depth == 2  # entry level + one of 8

    def test_auto_name_encodes_parameters(self):
        graph = generate_family_graph("forkjoin", 14, seed=2)
        assert graph.name == "forkjoin-14t-s2"


class TestDeterminism:
    def test_same_triple_same_graph(self):
        one = generate_family_graph("layered", 30, seed=11)
        two = generate_family_graph("layered", 30, seed=11)
        assert graph_to_dict(one) == graph_to_dict(two)

    def test_different_seed_different_graph(self):
        one = generate_family_graph("layered", 30, seed=11)
        two = generate_family_graph("layered", 30, seed=12)
        assert graph_to_dict(one) != graph_to_dict(two)

    def test_spec_hash_stable_in_process(self):
        spec = platform_spec(
            policy="thermal", graph=generated_source("layered", 18, seed=42)
        )
        again = FlowSpec.from_json(spec.to_json())
        assert spec_hash(spec) == spec_hash(again)

    def test_graph_and_hash_stable_across_interpreters(self):
        """Two fresh interpreters agree with each other and with us."""
        outputs = []
        for _ in range(2):
            completed = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SNIPPET],
                capture_output=True,
                text=True,
                timeout=240,
                check=True,
            )
            outputs.append(json.loads(completed.stdout))
        assert outputs[0] == outputs[1]
        local_graph = generate_family_graph("layered", 18, seed=42)
        local_spec = platform_spec(
            policy="thermal", graph=generated_source("layered", 18, seed=42)
        )
        assert outputs[0]["graph"] == graph_to_dict(local_graph)
        assert outputs[0]["hash"] == spec_hash(local_spec)


class TestSpecValidation:
    def test_generated_requires_tasks(self):
        with pytest.raises(FlowSpecError, match="tasks"):
            GraphSourceSpec(kind="generated", name="g")

    def test_generated_fields_rejected_on_benchmark(self):
        with pytest.raises(FlowSpecError, match="generated"):
            GraphSourceSpec(kind="benchmark", name="Bm1", tasks=10)

    def test_generated_auto_names_at_build_time(self):
        """An empty name means 'self-describing default' and is resolved
        when the graph is built — grid overrides of tasks/seed relabel."""
        spec = GraphSourceSpec(kind="generated", tasks=8, seed=3)
        assert spec.name == ""  # stays symbolic in the spec
        result = run_flow(
            platform_spec(policy="heuristic3", graph=spec)
        )
        assert result.schedule.graph.name == "layered-8t-s3"

    def test_auto_name_tracks_grid_overrides(self):
        """Sweeping graph.tasks must not keep a stale materialized name."""
        from repro.scenarios import apply_overrides

        base = platform_spec(
            policy="heuristic3",
            graph=GraphSourceSpec(kind="generated", tasks=8, seed=3),
        )
        swept = apply_overrides(base, {"graph.tasks": 12})
        result = run_flow(swept)
        assert result.schedule.graph.name == "layered-12t-s3"
        assert result.schedule.graph.num_tasks == 12

    def test_generated_may_not_wear_a_benchmark_name(self):
        """--set graph.kind=generated on a benchmark base must not
        silently report a random graph as Bm1."""
        with pytest.raises(FlowSpecError, match="benchmark name"):
            GraphSourceSpec(kind="generated", name="Bm1", tasks=8)

    def test_generated_knobs_validated_at_spec_time(self):
        """Bad grid-axis values fail at expand() time as FlowSpecError,
        not mid-sweep as internal generator errors."""
        with pytest.raises(FlowSpecError, match="width"):
            GraphSourceSpec(kind="generated", tasks=10, width=0)
        with pytest.raises(FlowSpecError, match="family"):
            GraphSourceSpec(kind="generated", tasks=10, family="spaghetti")
        with pytest.raises(FlowSpecError, match="ccr"):
            GraphSourceSpec(kind="generated", tasks=10, ccr=-1.0)
        with pytest.raises(FlowSpecError, match="chain"):
            GraphSourceSpec(kind="generated", tasks=10, family="chain", width=3)

    def test_path_rejected_off_file_kind(self):
        with pytest.raises(FlowSpecError, match="file"):
            GraphSourceSpec(kind="benchmark", name="Bm1", path="x.tg")

    def test_file_requires_path_and_empty_name(self):
        with pytest.raises(FlowSpecError, match="path"):
            GraphSourceSpec(kind="file", name="")
        with pytest.raises(FlowSpecError, match="name"):
            GraphSourceSpec(kind="file", name="x", path="x.tg")

    def test_file_kind_clears_the_default_name(self):
        """Partial dicts / --set conversions leak the 'Bm1' class default;
        file sources must not demand the user blank it by hand."""
        spec = GraphSourceSpec(kind="file", path="w.tg")
        assert spec.name == ""
        rebuilt = FlowSpec.from_dict(
            {"flow": "platform", "graph": {"kind": "file", "path": "w.tg"}}
        )
        assert rebuilt.graph.name == ""

    def test_tiny_generated_graphs_stay_feasible(self):
        """Family default densities clamp to C(n,2) so a task-count sweep
        including tiny points never dies mid-suite."""
        for tasks in (1, 2, 3):
            graph = generate_family_graph("layered", tasks, seed=1)
            assert graph.num_tasks == tasks
            assert graph.num_edges <= tasks * (tasks - 1) // 2

    def test_round_trip_identity(self):
        spec = platform_spec(
            policy="heuristic3",
            graph=generated_source("forkjoin", 16, seed=3, width=4, ccr=2.0),
        )
        assert FlowSpec.from_json(spec.to_json()) == spec


class TestEndToEnd:
    def test_generated_through_flow_run(self):
        result = run_flow(
            platform_spec(
                policy="heuristic3",
                graph=generated_source("layered", 16, seed=4),
            )
        )
        assert result.schedule.graph.num_tasks == 16
        assert result.evaluation.total_power > 0.0

    def test_generated_through_run_many_dedup(self):
        spec = platform_spec(
            policy="heuristic3", graph=generated_source("chain", 10, seed=1)
        )
        results = run_many([spec, spec])
        assert results[0] is results[1]

    def test_generated_through_cli(self, capsys):
        from repro.cli import main

        argv = [
            "run", "--policy", "heuristic3", "--json",
            "--set", "graph.kind=generated",
            "--set", "graph.name=cli-gen",
            "--set", "graph.family=wide",
            "--set", "graph.tasks=12",
            "--set", "graph.seed=9",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["row"]["benchmark"] == "cli-gen"
        first_hash = payload["provenance"]["spec_hash"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provenance"]["spec_hash"] == first_hash

    def test_file_source_round_trips(self, tmp_path):
        graph = generate_family_graph("layered", 12, seed=6, name="diskgraph")
        path = tmp_path / "diskgraph.tg"
        save_graph(graph, path)
        result = run_flow(
            platform_spec(policy="heuristic3", graph=file_source(path))
        )
        assert result.schedule.graph.name == "diskgraph"
        assert result.schedule.graph.num_tasks == 12

    def test_file_edits_visible_within_a_process(self, tmp_path):
        """File graphs are re-read every run — the in-process workload
        memo must not replay a stale graph after the file changes."""
        path = tmp_path / "w.tg"
        save_graph(generate_family_graph("chain", 5, seed=1, name="w"), path)
        spec = platform_spec(policy="heuristic3", graph=file_source(path))
        first = run_flow(spec)
        assert first.schedule.graph.num_tasks == 5
        save_graph(generate_family_graph("chain", 7, seed=1, name="w"), path)
        second = run_flow(spec)
        assert second.schedule.graph.num_tasks == 7
