"""Tests for the DSE candidate encoding and variation operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.candidate import (
    CandidateSpec,
    MUTATION_KINDS,
    architecture_for,
    crossover,
    mutate,
    placement_of,
    random_candidate,
    seeded_layout,
    substream,
)
from repro.errors import DseError

SPACE = dict(
    pes=(None,),
    counts=(3, 4),
    policies=("thermal", "heuristic3"),
    dvfs_options=(False, True),
)


def sample_candidate(seed: int = 0, **overrides) -> CandidateSpec:
    kwargs = dict(SPACE)
    kwargs.update(overrides)
    return random_candidate(substream(seed, "sample"), **kwargs)


# ----------------------------------------------------------------------
# substreams
# ----------------------------------------------------------------------
class TestSubstream:
    def test_same_path_same_stream(self):
        a = [substream(7, 3, 1, "mutate").random() for _ in range(5)]
        b = [substream(7, 3, 1, "mutate").random() for _ in range(5)]
        assert a == b

    def test_distinct_paths_distinct_streams(self):
        draws = {
            substream(7, *path).random()
            for path in [(0, 0, "init"), (0, 1, "init"), (1, 0, "init")]
        }
        assert len(draws) == 3

    def test_seed_participates(self):
        assert substream(1, "x").random() != substream(2, "x").random()

    def test_no_global_state(self):
        import random as stdlib_random

        stdlib_random.seed(123)
        first = substream(9, "probe").random()
        stdlib_random.seed(456)
        assert substream(9, "probe").random() == first


# ----------------------------------------------------------------------
# the spec itself
# ----------------------------------------------------------------------
class TestCandidateSpec:
    def test_round_trip(self):
        candidate = sample_candidate(seed=3)
        clone = CandidateSpec.from_dict(candidate.to_dict())
        assert clone == candidate

    def test_unknown_keys_rejected(self):
        payload = sample_candidate().to_dict()
        payload["frequency"] = 2.0
        with pytest.raises(DseError, match="frequency"):
            CandidateSpec.from_dict(payload)

    def test_empty_placement_rejected(self):
        with pytest.raises(DseError, match="placement"):
            CandidateSpec(placement=())

    def test_count_placement_mismatch_rejected(self):
        with pytest.raises(DseError, match="places"):
            CandidateSpec(count=2, placement=(("pe0", 0.0, 0.0, 2.0, 2.0),))

    def test_bad_count_rejected(self):
        with pytest.raises(DseError, match=">= 1"):
            CandidateSpec(count=0, placement=(("pe0", 0.0, 0.0, 2.0, 2.0),))

    def test_floorplan_is_validated(self):
        candidate = sample_candidate()
        plan = candidate.floorplan()
        assert sorted(plan.block_names()) == sorted(
            name for name, *_ in candidate.placement
        )

    def test_lowering_targets_explicit_floorplanner(self):
        candidate = sample_candidate()
        spec = candidate.to_flow_spec()
        assert spec.floorplan.kind == "explicit"
        assert spec.floorplan.placement == candidate.placement
        assert spec.architecture.count == candidate.count
        assert spec.dvfs.enabled == candidate.dvfs

    def test_spec_hash_is_stable(self):
        from repro.flow.spec import spec_hash

        a = sample_candidate(seed=5).to_flow_spec()
        b = sample_candidate(seed=5).to_flow_spec()
        assert spec_hash(a) == spec_hash(b)


# ----------------------------------------------------------------------
# generation and variation
# ----------------------------------------------------------------------
class TestRandomCandidate:
    def test_deterministic_per_stream(self):
        a = random_candidate(substream(11, 0, "init"), **SPACE)
        b = random_candidate(substream(11, 0, "init"), **SPACE)
        assert a == b

    def test_draws_from_configured_space(self):
        seen_counts = {
            random_candidate(substream(s, "probe"), **SPACE).count
            for s in range(12)
        }
        assert seen_counts <= {3, 4}
        assert len(seen_counts) == 2

    def test_layout_matches_architecture(self):
        candidate = random_candidate(substream(4, "probe"), **SPACE)
        architecture = architecture_for(
            candidate.catalogue, candidate.pe, candidate.count
        )
        assert sorted(name for name, *_ in candidate.placement) == sorted(
            pe.name for pe in architecture
        )


class TestMutate:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_children_are_valid_and_deterministic(self, seed):
        parent = sample_candidate()
        child = mutate(parent, substream(seed, "mutate"), **SPACE)
        again = mutate(parent, substream(seed, "mutate"), **SPACE)
        assert child == again
        child.floorplan()  # validates: no overlaps, consistent block set
        assert child.policy in SPACE["policies"]
        assert child.count in SPACE["counts"]

    def test_operator_mixture_covers_all_kinds(self):
        parent = sample_candidate()
        kinds = set()
        for seed in range(200):
            child = mutate(parent, substream(seed, "mix"), **SPACE)
            if child.count != parent.count or child.pe != parent.pe:
                kinds.add("arch")
            elif child.policy != parent.policy:
                kinds.add("policy")
            elif child.dvfs != parent.dvfs:
                kinds.add("dvfs")
            elif child.placement != parent.placement:
                kinds.add("placement")
        assert {"arch", "policy", "dvfs", "placement"} <= kinds

    def test_weights_sum_to_one(self):
        assert sum(w for _, w in MUTATION_KINDS) == pytest.approx(1.0)

    def test_screen_picks_the_coolest_move(self):
        parent = sample_candidate()
        calls = []

        def screen(placement):
            calls.append(placement)
            return float(len(calls))  # first proposal is "coolest"

        for seed in range(40):
            child = mutate(
                parent, substream(seed, "screened"), screen=screen, **SPACE
            )
            if calls:
                assert child.placement == calls[0]
                break
        else:
            pytest.fail("no move mutation drawn in 40 seeds")


class TestCrossover:
    def test_deterministic(self):
        a, b = sample_candidate(seed=1), sample_candidate(seed=2)
        child = crossover(a, b, substream(5, "x"))
        again = crossover(a, b, substream(5, "x"))
        assert child == again

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_children_are_valid(self, seed):
        a = sample_candidate(seed=1)
        b = sample_candidate(seed=2)
        child = crossover(a, b, substream(seed, "x"))
        child.floorplan()
        assert child.policy in {a.policy, b.policy}
        assert child.dvfs in {a.dvfs, b.dvfs}

    def test_incompatible_parents_inherit_whole_structure(self):
        a = sample_candidate(seed=1, counts=(3,))
        b = sample_candidate(seed=2, counts=(4,))
        child = crossover(a, b, substream(9, "x"))
        assert child.placement in {a.placement, b.placement}


# ----------------------------------------------------------------------
# layout plumbing
# ----------------------------------------------------------------------
class TestLayouts:
    def test_seeded_layout_deterministic(self):
        architecture = architecture_for("default", None, 4)
        a = seeded_layout(architecture, substream(3, "layout"))
        b = seeded_layout(architecture, substream(3, "layout"))
        assert a == b

    def test_placement_of_round_trips(self):
        candidate = sample_candidate()
        assert placement_of(candidate.floorplan()) == candidate.placement
