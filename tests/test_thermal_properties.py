"""Property-based tests for the thermal substrate.

Physical invariants any correct compact model must satisfy:

* temperatures never drop below ambient for non-negative powers;
* monotonicity: adding power anywhere never cools any node;
* linearity/superposition of temperature rises;
* the conductance matrix is symmetric positive definite once grounded.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan.geometry import Floorplan
from repro.thermal.blockmodel import build_block_network
from repro.thermal.steady import SteadyStateSolver


@st.composite
def row_floorplans(draw):
    """Rows of 2-6 abutting blocks with random sizes."""
    count = draw(st.integers(min_value=2, max_value=6))
    plan = Floorplan()
    x = 0.0
    for index in range(count):
        w = draw(st.floats(min_value=2.0, max_value=9.0))
        h = draw(st.floats(min_value=2.0, max_value=9.0))
        plan.place(f"b{index}", x, 0.0, w, h)
        x += w
    return plan


@st.composite
def power_maps(draw):
    plan = draw(row_floorplans())
    powers = {}
    for block in plan:
        if draw(st.booleans()):
            powers[block.name] = draw(st.floats(min_value=0.0, max_value=20.0))
    return plan, powers


@given(case=power_maps())
@settings(max_examples=40, deadline=None)
def test_temperatures_at_or_above_ambient(case):
    plan, powers = case
    solver = SteadyStateSolver(build_block_network(plan))
    temps = solver.temperatures(powers)
    ambient = solver.network.ambient_c
    for value in temps.values():
        assert value >= ambient - 1e-9


@given(case=power_maps(), extra=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_monotone_in_power(case, extra):
    plan, powers = case
    solver = SteadyStateSolver(build_block_network(plan))
    base = solver.temperatures(powers)
    target = plan.block_names()[0]
    bumped = dict(powers)
    bumped[target] = bumped.get(target, 0.0) + extra
    hotter = solver.temperatures(bumped)
    for name in solver.network.node_names():
        assert hotter[name] >= base[name] - 1e-9
    assert hotter[target] > base[target]


@given(plan=row_floorplans(), p=st.floats(min_value=0.5, max_value=15.0))
@settings(max_examples=30, deadline=None)
def test_superposition_of_rises(plan, p):
    solver = SteadyStateSolver(build_block_network(plan))
    ambient = solver.network.ambient_c
    names = plan.block_names()
    first, last = names[0], names[-1]
    t_first = solver.temperatures({first: p})
    t_last = solver.temperatures({last: p})
    t_both = solver.temperatures({first: p, last: p})
    for name in solver.network.node_names():
        combined = (t_first[name] - ambient) + (t_last[name] - ambient)
        assert abs((t_both[name] - ambient) - combined) < 1e-6


@given(plan=row_floorplans())
@settings(max_examples=30, deadline=None)
def test_conductance_matrix_is_spd(plan):
    network = build_block_network(plan)
    matrix = network.conductance_matrix()
    assert np.allclose(matrix, matrix.T)
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert (eigenvalues > 0.0).all()


@given(plan=row_floorplans(), p=st.floats(min_value=0.5, max_value=15.0))
@settings(max_examples=30, deadline=None)
def test_loaded_block_is_global_maximum(plan, p):
    """With a single heat source, that block is the hottest node."""
    solver = SteadyStateSolver(build_block_network(plan))
    target = plan.block_names()[0]
    temps = solver.temperatures({target: p})
    assert temps[target] == max(temps.values())


@given(plan=row_floorplans(), p=st.floats(min_value=1.0, max_value=15.0))
@settings(max_examples=30, deadline=None)
def test_scaling_power_scales_rise_linearly(plan, p):
    solver = SteadyStateSolver(build_block_network(plan))
    ambient = solver.network.ambient_c
    target = plan.block_names()[-1]
    single = solver.temperatures({target: p})[target] - ambient
    double = solver.temperatures({target: 2.0 * p})[target] - ambient
    assert abs(double - 2.0 * single) < 1e-6
