"""Tests for the leakage-thermal fixed-point loop."""

import math

import pytest

from repro.errors import ThermalError
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.leakage import LeakageModel, solve_with_leakage


@pytest.fixture
def model(platform_plan):
    return HotSpotModel(platform_plan)


class TestLeakageModel:
    def test_reference_point(self):
        leak = LeakageModel(leakage_fraction=0.2, beta=0.02, t_ref_c=65.0)
        assert leak.leakage_power(10.0, 65.0) == pytest.approx(2.0)

    def test_exponential_growth(self):
        leak = LeakageModel(leakage_fraction=0.2, beta=0.02, t_ref_c=65.0)
        at_ref = leak.leakage_power(10.0, 65.0)
        ten_up = leak.leakage_power(10.0, 75.0)
        assert ten_up / at_ref == pytest.approx(math.exp(0.2))

    def test_negative_inputs_rejected(self):
        with pytest.raises(ThermalError):
            LeakageModel(leakage_fraction=-0.1)
        with pytest.raises(ThermalError):
            LeakageModel(beta=-0.01)
        with pytest.raises(ThermalError):
            LeakageModel().leakage_power(-1.0, 65.0)


class TestFixedPoint:
    def test_converges_for_default_config(self, model):
        powers = {name: 5.0 for name in model.block_names}
        solution = solve_with_leakage(model, powers)
        assert solution.converged
        assert solution.iterations < 20

    def test_leakage_raises_temperature(self, model):
        powers = {name: 5.0 for name in model.block_names}
        without = model.block_temperatures(powers)
        with_leak = solve_with_leakage(model, powers)
        for name in model.block_names:
            assert with_leak.temperatures[name] > without[name]

    def test_zero_fraction_changes_nothing(self, model):
        powers = {name: 5.0 for name in model.block_names}
        baseline = model.block_temperatures(powers)
        solution = solve_with_leakage(
            model, powers, LeakageModel(leakage_fraction=0.0)
        )
        assert solution.total_leakage == 0.0
        for name in model.block_names:
            assert solution.temperatures[name] == pytest.approx(baseline[name])

    def test_totals_consistent(self, model):
        powers = {name: 4.0 for name in model.block_names}
        solution = solve_with_leakage(model, powers)
        assert solution.total_power == pytest.approx(
            16.0 + solution.total_leakage
        )
        assert solution.peak_temperature >= solution.avg_temperature

    def test_higher_beta_more_leakage(self, model):
        # note: beta=0.04 at these power levels genuinely runs away (loop
        # gain > 1) — covered by test_runaway_detected — so compare two
        # stable sensitivities
        powers = {name: 5.0 for name in model.block_names}
        mild = solve_with_leakage(model, powers, LeakageModel(beta=0.005))
        steep = solve_with_leakage(model, powers, LeakageModel(beta=0.02))
        assert steep.total_leakage > mild.total_leakage

    def test_runaway_detected(self, model):
        """An absurd leakage configuration must raise, not hang or return
        silently wrong numbers."""
        powers = {name: 12.0 for name in model.block_names}
        aggressive = LeakageModel(leakage_fraction=2.0, beta=0.3, t_ref_c=45.0)
        with pytest.raises(ThermalError, match="runaway"):
            solve_with_leakage(model, powers, aggressive)

    def test_monotone_in_power(self, model):
        low = solve_with_leakage(model, {"pe0": 4.0})
        high = solve_with_leakage(model, {"pe0": 8.0})
        assert high.peak_temperature > low.peak_temperature
