"""ResultStore + RunSet: the append-only ledger and its query layer.

The load-bearing tests are the streaming contracts: records land exactly
once and in deterministic index order under a worker pool, and a
crashed/partial blob is skipped (and counted) on load instead of
corrupting the RunSet.
"""

import json

import pytest

from repro.errors import ResultError
from repro.flow import platform_spec, run_many, spec_hash
from repro.results import (
    ResultStore,
    RunRecord,
    RunSet,
    run_to_store,
    stream_records,
)


def sweep_specs():
    return [
        platform_spec(bench, policy=policy)
        for bench in ("Bm1", "Bm2")
        for policy in ("heuristic3", "thermal")
    ]


@pytest.fixture(scope="module")
def records():
    return [
        r.as_record(suite="suite-a") for r in run_many(sweep_specs())
    ]


@pytest.fixture()
def store(tmp_path, records):
    store = ResultStore(tmp_path / "store")
    store.extend(records)
    return store


class TestAppendLoad:
    def test_round_trip_preserves_records_and_order(self, store, records):
        runs = store.load()
        assert list(runs) == records
        assert runs.skipped == 0

    def test_ids_are_sequential(self, store):
        ids = [entry["id"] for entry in store.index()]
        assert [i.split("-")[0] for i in ids] == [
            "r000000", "r000001", "r000002", "r000003",
        ]

    def test_append_after_reopen_continues_the_sequence(self, store, records):
        reopened = ResultStore(store.root)
        reopened.append(records[0])
        assert store.index()[-1]["id"].startswith("r000004")

    def test_append_rejects_non_records(self, store):
        with pytest.raises(ResultError, match="RunRecord"):
            store.append({"not": "a record"})

    def test_len_counts_ledger_entries(self, store):
        assert len(store) == 4

    def test_get_by_id_prefix_and_hash_prefix(self, store, records):
        entry = store.index()[2]
        assert store.get(entry["id"]) == records[2]
        assert store.get("r000002") == records[2]
        assert store.get(records[2].spec_hash[:8]) == records[2]

    def test_get_unknown_raises(self, store):
        with pytest.raises(ResultError, match="no record"):
            store.get("zzz")

    def test_get_ambiguous_prefix_raises(self, store):
        # "r0" prefixes every ledger id, which span different specs
        with pytest.raises(ResultError, match="ambiguous"):
            store.get("r0")

    def test_get_prefix_spanning_reruns_of_one_spec_resolves_latest(
        self, store, records
    ):
        store.append(records[0])  # a re-run of the first spec
        assert store.get(records[0].spec_hash[:8]) == records[0]


class TestFilters:
    def test_ledger_filters(self, store):
        assert len(store.load(flow="platform")) == 4
        assert len(store.load(flow="cosynthesis")) == 0
        assert len(store.load(suite="suite-a")) == 4
        assert len(store.load(suite="other")) == 0
        digest = spec_hash(sweep_specs()[0])
        assert len(store.load(spec_hash=digest)) == 1

    def test_where_filters_on_dotted_paths(self, store):
        runs = store.load(where={"spec.policy.name": "thermal"})
        assert len(runs) == 2
        hot = store.load().filter(
            where={"metrics.max_temperature": lambda t: t > 100.0}
        )
        assert all(r.metrics["max_temperature"] > 100.0 for r in hot)

    def test_runset_values_and_rows(self, store):
        runs = store.load()
        assert runs.values("metrics.benchmark") == ["Bm1", "Bm1", "Bm2", "Bm2"]
        assert [row["policy"] for row in runs.rows()] == [
            "heuristic3", "thermal", "heuristic3", "thermal",
        ]

    def test_latest_dedups_by_spec_hash(self, store, records):
        store.append(records[0])  # re-run of the first spec
        runs = store.load()
        assert len(runs) == 5
        assert len(runs.latest()) == 4


class TestCorruption:
    def test_partial_blob_is_skipped_and_counted(self, store):
        entry = store.index()[1]
        blob = store.root / entry["blob"]
        blob.write_text(blob.read_text()[: len(blob.read_text()) // 2])
        runs = store.load()
        assert len(runs) == 3
        assert runs.skipped == 1
        # the surviving records are intact and in order
        assert [r.metrics["benchmark"] for r in runs] == ["Bm1", "Bm2", "Bm2"]

    def test_missing_blob_is_skipped(self, store):
        entry = store.index()[0]
        (store.root / entry["blob"]).unlink()
        assert store.load().skipped == 1

    def test_torn_index_line_is_skipped(self, store):
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"id": "r9999')  # interrupted append
        assert len(store.index()) == 4
        assert len(store.load()) == 4

    def test_racing_appender_cannot_overwrite_a_blob(self, store, records):
        """Two handles that both think the next sequence number is free
        must land two distinct records, never overwrite one."""
        racer = ResultStore(store.root)
        racer._next_seq = 0  # stale view, as a concurrent process would have
        racer.append(records[0])
        runs = store.load()
        assert len(runs) == 5
        assert runs.skipped == 0
        assert len({e["id"] for e in store.index()}) == 5

    def test_unsupported_schema_version_is_skipped(self, store, records):
        # forge a ledger entry claiming a future schema
        entry = dict(store.index()[0])
        entry["id"] = "r000099-future"
        entry["schema_version"] = 999
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        runs = store.load()
        assert len(runs) == 4
        assert runs.skipped == 1


def _append_n_from_child(store_root, record_dict, n, barrier):
    """Child-process writer: append *n* copies of one record.

    Module-level so spawn/fork both pickle it; waits on the barrier so
    both writers open the store (and read the same stale sequence
    number) before either appends — the worst-case interleaving the
    advisory index lock exists for.
    """
    store = ResultStore(store_root)
    record = RunRecord.from_dict(record_dict)
    barrier.wait(timeout=30)
    for _ in range(n):
        store.append(record)


class TestConcurrentAppenders:
    def test_two_writer_processes_interleave_without_loss(
        self, tmp_path, records
    ):
        """Regression: two unrelated *processes* appending concurrently
        must produce 2N distinct ledger entries and a fully loadable
        store.  Before the fcntl index lock, both writers could read the
        same next-sequence value and race the read-append-write cycle —
        torn index lines or one blob's entry lost."""
        import multiprocessing

        ctx = multiprocessing.get_context()
        store_root = tmp_path / "contended"
        ResultStore(store_root)  # create the directory up front
        n = 20
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(
                target=_append_n_from_child,
                args=(store_root, record.to_dict(), n, barrier),
            )
            for record in records[:2]
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = ResultStore(store_root)
        entries = store.index()
        assert len(entries) == 2 * n
        assert len({e["id"] for e in entries}) == 2 * n
        runs = store.load()
        assert len(runs) == 2 * n
        assert runs.skipped == 0

    def test_reopened_store_syncs_with_a_foreign_append(self, tmp_path, records):
        """An open handle notices appends made by another handle (the
        byte-size staleness check) instead of reusing their ids."""
        first = ResultStore(tmp_path / "sync")
        second = ResultStore(tmp_path / "sync")
        first.append(records[0])
        second.append(records[1])
        first.append(records[2])
        ids = [e["id"] for e in first.index()]
        assert len(ids) == 3 and len(set(ids)) == 3


class TestStreaming:
    def test_pool_streaming_lands_exactly_once_in_input_order(self, tmp_path):
        """Satellite contract: workers > 1 writes each record once, and
        the ledger order equals the input spec order."""
        specs = sweep_specs()
        store = ResultStore(tmp_path / "pooled")
        counts = run_to_store(specs, store=store, workers=2)
        assert counts["records"] == len(specs)
        entries = store.index()
        assert [e["spec_hash"] for e in entries] == [spec_hash(s) for s in specs]
        assert len({e["id"] for e in entries}) == len(specs)
        runs = store.load()
        assert runs.skipped == 0
        assert [r.metrics["benchmark"] for r in runs] == ["Bm1", "Bm1", "Bm2", "Bm2"]
        assert all(r.provenance["worker"] == "pool" for r in runs)

    def test_pool_matches_serial_records(self, tmp_path):
        specs = sweep_specs()[:2]
        serial = ResultStore(tmp_path / "serial")
        pooled = ResultStore(tmp_path / "pooled")
        run_to_store(specs, store=serial)
        run_to_store(specs, store=pooled, workers=2)
        for a, b in zip(serial.load(), pooled.load()):
            assert a.metrics == b.metrics
            assert a.spec_hash == b.spec_hash

    def test_duplicate_specs_yield_one_record_each(self, tmp_path):
        spec = platform_spec("Bm1", policy="thermal")
        store = ResultStore(tmp_path / "dups")
        counts = run_to_store([spec, spec, spec], store=store)
        assert counts["records"] == 3  # every grid row lands in the ledger
        runs = store.load()
        assert len({r.spec_hash for r in runs}) == 1

    def test_stream_records_appends_before_yield(self, tmp_path):
        store = ResultStore(tmp_path / "incremental")
        seen = []
        for record in stream_records(sweep_specs()[:2], store=store):
            # durably in the ledger by the time the consumer sees it
            seen.append(record)
            assert len(store) == len(seen)

    def test_run_many_store_equals_returned_results(self, tmp_path):
        store = ResultStore(tmp_path / "runmany")
        results = run_many(sweep_specs()[:2], store=store, suite="s")
        stored = store.load()
        assert [r.spec_hash for r in stored] == [
            res.provenance["spec_hash"] for res in results
        ]
        assert all(r.suite == "s" for r in stored)


class TestRunSetExport:
    def test_csv_is_byte_stable(self, store):
        runs = store.load()
        assert runs.to_csv() == store.load().to_csv()
        header = runs.to_csv().splitlines()[0]
        assert header.startswith("benchmark,architecture,policy,total_pow")

    def test_json_export_parses(self, store):
        payload = json.loads(store.load().to_json())
        assert len(payload) == 4
        assert all(RunRecord.from_dict(item) for item in payload)

    def test_runset_rejects_non_records(self):
        with pytest.raises(ResultError, match="RunRecord"):
            RunSet(records=("nope",))
