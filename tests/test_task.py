"""Tests for Task and Edge records."""

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.task import Edge, Task


class TestTask:
    def test_basic_fields(self):
        task = Task("t0", "fft", weight=2.0)
        assert task.name == "t0"
        assert task.task_type == "fft"
        assert task.weight == 2.0
        assert task.attrs == {}

    def test_default_weight_is_nominal(self):
        assert Task("t", "x").weight == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(TaskGraphError):
            Task("", "fft")

    def test_empty_type_rejected(self):
        with pytest.raises(TaskGraphError):
            Task("t0", "")

    @pytest.mark.parametrize("weight", [0.0, -1.0, -0.001])
    def test_nonpositive_weight_rejected(self, weight):
        with pytest.raises(TaskGraphError):
            Task("t0", "fft", weight=weight)

    def test_scaled_returns_new_task(self):
        task = Task("t0", "fft", weight=2.0, attrs={"k": 1})
        scaled = task.scaled(1.5)
        assert scaled.weight == pytest.approx(3.0)
        assert scaled is not task
        assert task.weight == 2.0  # original unchanged
        assert scaled.attrs == {"k": 1}

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(TaskGraphError):
            Task("t0", "fft").scaled(0.0)

    def test_equality_ignores_attrs(self):
        assert Task("t", "x", attrs={"a": 1}) == Task("t", "x", attrs={"b": 2})


class TestEdge:
    def test_basic_fields(self):
        edge = Edge("a", "b", data=4.5)
        assert edge.key == ("a", "b")
        assert edge.data == 4.5

    def test_default_data_zero(self):
        assert Edge("a", "b").data == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(TaskGraphError):
            Edge("a", "a")

    def test_empty_endpoint_rejected(self):
        with pytest.raises(TaskGraphError):
            Edge("", "b")
        with pytest.raises(TaskGraphError):
            Edge("a", "")

    def test_negative_data_rejected(self):
        with pytest.raises(TaskGraphError):
            Edge("a", "b", data=-1.0)
