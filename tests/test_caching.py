"""`repro.caching`: the LRU primitive and oldest-first disk pruning.

One eviction policy, two habitats: `LRUCache` bounds the serve daemon's
in-memory engine cache, `prune_dir` applies the same oldest-first rule
to on-disk flow result caches (`repro cache prune`).  The pinned
behaviours: recency refresh on hit, strict entry budgets, the advisory
byte budget that always keeps at least one entry, and mtime-ordered
(name tie-broken) disk eviction.
"""

import os

import pytest

from repro.caching import LRUCache, prune_dir
from repro.cli import main
from repro.flow import platform_spec, prune_cache, run_many


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_entry_budget_evicts_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a: b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_evicts_oldest_first(self):
        cache = LRUCache(max_entries=None, max_bytes=100)
        cache.put("a", 1, size=60)
        cache.put("b", 2, size=60)  # 120 > 100: a goes
        assert cache.get("a") is None and cache.get("b") == 2
        assert cache.stats()["bytes"] == 60

    def test_single_oversized_entry_is_kept(self):
        cache = LRUCache(max_entries=None, max_bytes=10)
        cache.put("big", "x", size=500)
        assert cache.get("big") == "x"
        assert cache.stats()["entries"] == 1

    def test_zero_entries_disables_storage(self):
        cache = LRUCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["entries"] == 0

    def test_put_replaces_in_place(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats()["entries"] == 1


def _seed_files(directory, names_and_sizes):
    """Create cache-entry files with strictly increasing mtimes."""
    directory.mkdir(parents=True, exist_ok=True)
    for index, (name, size) in enumerate(names_and_sizes):
        path = directory / name
        path.write_bytes(b"x" * size)
        stamp = 1_000_000_000 + index
        os.utime(path, (stamp, stamp))


class TestPruneDir:
    def test_max_entries_removes_oldest_first(self, tmp_path):
        _seed_files(tmp_path, [(f"e{i}.pkl", 10) for i in range(5)])
        result = prune_dir(tmp_path, ".pkl", max_entries=2)
        assert result.scanned == 5 and result.removed == 3
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "e3.pkl", "e4.pkl",
        ]
        assert [os.path.basename(p) for p in result.removed_paths] == [
            "e0.pkl", "e1.pkl", "e2.pkl",
        ]

    def test_max_bytes_keeps_newest_within_budget(self, tmp_path):
        _seed_files(tmp_path, [(f"e{i}.pkl", 100) for i in range(4)])
        result = prune_dir(tmp_path, ".pkl", max_bytes=250)
        assert result.removed == 2
        assert result.kept == 2 and result.kept_bytes == 200

    def test_dry_run_removes_nothing(self, tmp_path):
        _seed_files(tmp_path, [(f"e{i}.pkl", 10) for i in range(3)])
        result = prune_dir(tmp_path, ".pkl", max_entries=1, dry_run=True)
        assert result.removed == 2
        assert len(list(tmp_path.iterdir())) == 3

    def test_equal_mtimes_tie_break_on_name(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        for name in ("bb.pkl", "aa.pkl"):
            path = tmp_path / name
            path.write_bytes(b"x")
            os.utime(path, (1_000_000_000, 1_000_000_000))
        result = prune_dir(tmp_path, ".pkl", max_entries=1)
        assert [os.path.basename(p) for p in result.removed_paths] == ["aa.pkl"]

    def test_other_suffixes_untouched(self, tmp_path):
        _seed_files(tmp_path, [("a.pkl", 10), ("b.pkl", 10), ("keep.json", 10)])
        prune_dir(tmp_path, ".pkl", max_entries=0)
        assert [p.name for p in tmp_path.iterdir()] == ["keep.json"]

    def test_missing_directory_is_empty_result(self, tmp_path):
        result = prune_dir(tmp_path / "nope", ".pkl", max_entries=1)
        assert result.scanned == 0 and result.removed == 0


class TestFlowCachePrune:
    @pytest.fixture()
    def cache_dir(self, tmp_path):
        specs = [
            platform_spec("Bm1", policy=policy, weight=weight)
            for policy, weight in (
                ("thermal", None), ("thermal", 0.7), ("heuristic3", None),
            )
        ]
        run_many(specs, cache_dir=tmp_path / "cache")
        return tmp_path / "cache"

    def test_prune_cache_applies_the_lru_policy(self, cache_dir):
        entries = sorted(cache_dir.glob("*.flowresult.pkl"))
        assert len(entries) == 3
        result = prune_cache(cache_dir, max_entries=1)
        assert result.removed == 2 and result.kept == 1
        assert len(list(cache_dir.glob("*.flowresult.pkl"))) == 1

    def test_cli_prune_json_report(self, cache_dir, capsys):
        code = main([
            "cache", "prune", "--dir", str(cache_dir),
            "--max-entries", "2", "--json",
        ])
        assert code == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["scanned"] == 3 and report["removed"] == 1

    def test_cli_prune_dry_run_keeps_entries(self, cache_dir, capsys):
        code = main([
            "cache", "prune", "--dir", str(cache_dir),
            "--max-entries", "0", "--dry-run",
        ])
        assert code == 0
        assert "would remove 3" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*.flowresult.pkl"))) == 3

    def test_cli_prune_without_budget_exits_two(self, capsys):
        code = main(["cache", "prune", "--dir", "/tmp/x"])
        assert code == 2
        assert "max-entries" in capsys.readouterr().err
