"""FlowSpec serialization: dict/JSON round-trips, strictness, hashing."""

import json

import pytest

from repro.cosynth.framework import CoSynthesisConfig
from repro.errors import FlowSpecError
from repro.flow import (
    ConditionalSpec,
    CoSynthSpec,
    DVFSLevelSpec,
    DVFSSpec,
    FloorplanSpec,
    FlowSpec,
    GraphSourceSpec,
    LeakageSpec,
    LibrarySpec,
    PolicySpec,
    cosynthesis_spec,
    platform_spec,
    spec_hash,
)
from repro.floorplan.genetic import GeneticConfig


def rich_spec() -> FlowSpec:
    """A spec exercising every nested config, including post-passes."""
    return FlowSpec(
        flow="platform",
        graph=GraphSourceSpec(kind="conditional", name="video-frame"),
        library=LibrarySpec(seed=77),
        policy=PolicySpec(name="thermal-hybrid", weight=12.5, peak_fraction=0.3),
        floorplan=FloorplanSpec(kind="genetic", seed=11, population_size=8,
                                generations=5),
        dvfs=DVFSSpec(
            enabled=False,
            levels=(
                DVFSLevelSpec("nominal", 1.0, 1.0),
                DVFSLevelSpec("slow", 0.6, 0.72),
            ),
        ),
        leakage=LeakageSpec(enabled=True, leakage_fraction=0.2, beta=0.03),
        conditional=ConditionalSpec(
            enabled=True,
            guard_probabilities=(("scene", "change", 0.25), ("scene", "same", 0.75)),
        ),
    )


SPECS = [
    FlowSpec(),
    platform_spec("Bm2", policy="heuristic1", weight=2.0),
    platform_spec("Bm1", policy="thermal", dvfs=DVFSSpec(enabled=True)),
    cosynthesis_spec("Bm3", policy="thermal", final_cost="thermal"),
    cosynthesis_spec(
        "Bm1",
        policy="baseline",
        config=CoSynthesisConfig(
            max_pes=3,
            screening_keep=2,
            refine_iterations=1,
            genetic_config=GeneticConfig(population_size=8, generations=4),
        ),
        final_cost="performance",
        screening="performance",
    ),
    rich_spec(),
]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.flow + "/" + s.policy.name)
class TestRoundTrip:
    def test_dict_round_trip_is_identity(self, spec):
        assert FlowSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self, spec):
        assert FlowSpec.from_json(spec.to_json()) == spec

    def test_double_round_trip_stable(self, spec):
        once = FlowSpec.from_json(spec.to_json())
        assert once.to_json() == spec.to_json()

    def test_hash_stable_across_round_trip(self, spec):
        assert spec_hash(FlowSpec.from_json(spec.to_json())) == spec_hash(spec)

    def test_json_is_plain_data(self, spec):
        payload = json.loads(spec.to_json())
        assert isinstance(payload, dict)
        assert payload["flow"] == spec.flow


class TestStrictness:
    def test_unknown_top_level_key_rejected(self):
        data = FlowSpec().to_dict()
        data["turbo"] = True
        with pytest.raises(FlowSpecError):
            FlowSpec.from_dict(data)

    def test_unknown_nested_key_rejected(self):
        data = FlowSpec().to_dict()
        data["policy"]["voltage"] = 3
        with pytest.raises(FlowSpecError):
            FlowSpec.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(FlowSpecError):
            FlowSpec.from_json("{not json")

    def test_null_nested_section_rejected(self):
        data = FlowSpec().to_dict()
        data["policy"] = None
        with pytest.raises(FlowSpecError):
            FlowSpec.from_dict(data)

    def test_missing_sections_get_defaults(self):
        data = {"flow": "platform", "graph": {"kind": "benchmark", "name": "Bm2"}}
        spec = FlowSpec.from_dict(data)
        assert spec.graph.name == "Bm2"
        assert spec.policy == PolicySpec()

    def test_bad_graph_kind_rejected(self):
        with pytest.raises(FlowSpecError):
            GraphSourceSpec(kind="spreadsheet")

    def test_conditional_needs_conditional_graph(self):
        with pytest.raises(FlowSpecError):
            FlowSpec(conditional=ConditionalSpec(enabled=True))

    def test_conditional_graph_needs_enabled_flag(self):
        with pytest.raises(FlowSpecError):
            FlowSpec(graph=GraphSourceSpec(kind="conditional", name="video-frame"))

    def test_bad_final_cost_rejected(self):
        with pytest.raises(FlowSpecError):
            CoSynthSpec(final_cost="cheapest")


class TestHashing:
    def test_equal_specs_equal_hashes(self):
        assert spec_hash(platform_spec("Bm1")) == spec_hash(platform_spec("Bm1"))

    def test_different_specs_different_hashes(self):
        hashes = {spec_hash(spec) for spec in SPECS}
        assert len(hashes) == len(SPECS)

    def test_floorplan_none_serializes(self):
        spec = platform_spec("Bm1")
        assert spec.floorplan is None
        assert FlowSpec.from_json(spec.to_json()).floorplan is None


class TestConfigTranslation:
    def test_legacy_cosynthesis_config_maps_onto_spec(self):
        config = CoSynthesisConfig(
            max_pes=3,
            min_pes=2,
            screening_keep=4,
            refine_iterations=1,
            thermal_floorplanning=False,
            floorplan_seed=99,
            genetic_config=GeneticConfig(population_size=10, generations=6),
        )
        spec = cosynthesis_spec("Bm2", policy="heuristic2", config=config)
        assert spec.cosynth.max_pes == 3
        assert spec.cosynth.min_pes == 2
        assert spec.cosynth.screening_keep == 4
        assert spec.cosynth.refine_iterations == 1
        assert spec.cosynth.thermal_floorplanning is False
        assert spec.floorplan.seed == 99
        assert spec.floorplan.population_size == 10
        assert spec.floorplan.generations == 6

    def test_every_genetic_config_field_translates(self):
        """No GA knob may be silently dropped by the config translation."""
        genetic = GeneticConfig(
            population_size=8,
            generations=4,
            tournament_size=4,
            crossover_rate=0.7,
            mutation_rate=0.9,
            elite_count=3,
            init_shuffle_moves=7,
        )
        config = CoSynthesisConfig(genetic_config=genetic)
        spec = cosynthesis_spec("Bm1", config=config)
        assert spec.floorplan.genetic_config() == genetic

    def test_explicit_floorplan_override_beats_config(self):
        config = CoSynthesisConfig(
            genetic_config=GeneticConfig(population_size=8, generations=4)
        )
        spec = cosynthesis_spec(
            "Bm1",
            config=config,
            floorplan=FloorplanSpec(kind="genetic", population_size=12,
                                    generations=3),
        )
        assert spec.floorplan.population_size == 12
        assert spec.floorplan.generations == 3

    def test_with_replaces_top_level_fields(self):
        spec = platform_spec("Bm1").with_(dvfs=DVFSSpec(enabled=True))
        assert spec.dvfs.enabled
        assert spec.graph.name == "Bm1"


class TestExplicitFloorplan:
    """The DSE candidate path: kind='explicit' pins a verbatim layout."""

    PLACEMENT = (
        ("pe0", 0.0, 0.0, 6.0, 6.0),
        ("pe1", 6.0, 0.0, 6.0, 6.0),
        ("pe2", 0.0, 6.0, 6.0, 6.0),
        ("pe3", 6.0, 6.0, 6.0, 6.0),
    )

    def explicit_spec(self):
        return platform_spec("Bm1").with_(
            floorplan=FloorplanSpec(kind="explicit", placement=self.PLACEMENT)
        )

    def test_round_trip_preserves_placement(self):
        spec = self.explicit_spec()
        clone = FlowSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.floorplan.placement == self.PLACEMENT

    def test_placement_participates_in_hash(self):
        moved = platform_spec("Bm1").with_(
            floorplan=FloorplanSpec(
                kind="explicit",
                placement=self.PLACEMENT[:-1]
                + (("pe3", 6.5, 6.0, 5.5, 6.0),),
            )
        )
        assert spec_hash(moved) != spec_hash(self.explicit_spec())

    def test_empty_placement_omitted_from_serialization(self):
        # legacy hash stability: non-explicit specs serialize exactly as
        # they did before the placement field existed
        assert "placement" not in FloorplanSpec(kind="genetic").to_dict()

    def test_explicit_requires_placement(self):
        with pytest.raises(FlowSpecError, match="non-empty placement"):
            FloorplanSpec(kind="explicit")

    def test_placement_requires_explicit_kind(self):
        with pytest.raises(FlowSpecError, match="explicit"):
            FloorplanSpec(kind="genetic", placement=self.PLACEMENT)

    def test_malformed_entries_rejected(self):
        with pytest.raises(FlowSpecError, match="placement entries"):
            FloorplanSpec(kind="explicit", placement=(("pe0", 0.0, 0.0),))
        with pytest.raises(FlowSpecError, match="placement entries"):
            FloorplanSpec(
                kind="explicit", placement=(("pe0", 0.0, 0.0, True, 2.0),)
            )

    def test_duplicate_block_names_rejected(self):
        with pytest.raises(FlowSpecError, match="repeats"):
            FloorplanSpec(
                kind="explicit",
                placement=(
                    ("pe0", 0.0, 0.0, 2.0, 2.0),
                    ("pe0", 3.0, 0.0, 2.0, 2.0),
                ),
            )

    def test_flow_runs_on_the_pinned_layout(self):
        from repro.flow.runner import run_flow

        result = run_flow(self.explicit_spec())
        placed = {
            (b.name, b.rect.x, b.rect.y, b.rect.w, b.rect.h)
            for b in result.floorplan
        }
        assert placed == set(self.PLACEMENT)

    def test_mismatched_block_names_rejected_at_run(self):
        from repro.errors import FlowError
        from repro.flow.runner import run_flow

        bad = platform_spec("Bm1").with_(
            floorplan=FloorplanSpec(
                kind="explicit",
                placement=(("weird", 0.0, 0.0, 6.0, 6.0),)
                + self.PLACEMENT[1:],
            )
        )
        with pytest.raises(FlowError, match="explicit floorplan"):
            run_flow(bad)
