"""The ``repro.obs`` layer: spans, metrics, exporters, propagation.

Covers the tentpole contracts: null-recorder default (zero state, valid
``elapsed``), deterministic span hierarchies and trace inheritance,
byte-stable Prometheus/Chrome exports, exactly-once pool buffer merges
with deterministic ordering, serve worker-thread spans + ``/metrics``,
and the schema-v2 ``provenance.obs`` summary round-trip.
"""

import json

import pytest

from repro.flow import FlowSpec, platform_spec, run_many
from repro.flow.runner import Flow
from repro.flow.spec import spec_hash
from repro.obs import (
    DEFAULT_BUCKETS,
    Counters,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    capture,
    disable,
    enable,
    get_recorder,
    now,
)
from repro.obs.export import (
    chrome_trace,
    phase_summary,
    phase_totals,
    read_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.results.record import RECORD_SCHEMA_VERSION, RunRecord


SPEC = platform_spec("Bm1", policy="heuristic3")
THERMAL_SPEC = platform_spec("Bm1", policy="thermal")


def run_traced(spec):
    with capture() as recorder:
        result = Flow().run(spec)
    return result, recorder


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc(2)
        registry.gauge("a.depth").set(7)
        registry.histogram("a.wait_s").observe(0.003)
        assert registry.counter("a.hits").value == 3
        assert registry.gauge("a.depth").value == 7.0
        assert registry.histogram("a.wait_s").count == 1

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labels_key_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("req", code=200).inc()
        registry.counter("req", code=500).inc(4)
        assert registry.counter("req", code=200).value == 1
        assert registry.counter("req", code=500).value == 4

    def test_histogram_quantile_is_bucket_bound(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 10.0
        assert Histogram().quantile(0.5) == 0.0

    def test_prometheus_text_is_byte_stable(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b.misses").inc(2)
            registry.counter("a.hits", worker="w1").inc()
            registry.gauge("depth").set(3)
            registry.histogram("wait_s").observe(0.004)
            return registry.to_prometheus_text()

        first, second = build(), build()
        assert first == second
        assert "# TYPE repro_a_hits counter" in first
        assert 'repro_a_hits{worker="w1"} 1' in first
        assert 'repro_wait_s_bucket{le="+Inf"} 1' in first
        assert first.index("repro_a_hits") < first.index("repro_b_misses")

    def test_export_merge_adds(self):
        source = MetricsRegistry()
        source.counter("n").inc(3)
        source.histogram("h").observe(0.02)
        target = MetricsRegistry()
        target.counter("n").inc()
        target.merge(source.export())
        target.merge(source.export())
        assert target.counter("n").value == 7
        assert target.histogram("h").count == 2


class TestCounters:
    def test_mapping_drop_in(self):
        bundle = Counters(("completed", "failed"))
        bundle.inc("completed")
        bundle.inc("completed", 2)
        assert bundle["completed"] == 3 and bundle["failed"] == 0
        assert dict(bundle) == {"completed": 3, "failed": 0}
        assert sum(bundle.values()) == 3
        assert bundle == {"completed": 3, "failed": 0}
        assert bundle != {"completed": 3}
        assert bundle.as_dict() == dict(bundle)

    def test_mirrors_into_enabled_recorder(self):
        with capture() as recorder:
            bundle = Counters(("hits",), namespace="unit.cache")
            bundle.inc("hits", 5)
        assert recorder.metrics.counter("unit.cache.hits").value == 5

    def test_keyword_init_mirrors_nonzero_only(self):
        with capture() as recorder:
            Counters(namespace="unit.s", steps=4, idle=0)
        exported = recorder.metrics.export()
        names = [entry["name"] for entry in exported["counters"]]
        assert names == ["unit.s.steps"]

    def test_no_namespace_never_touches_recorder(self):
        with capture() as recorder:
            Counters(hits=3).inc("hits")
        assert recorder.metrics.export()["counters"] == []


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------
class TestRecorder:
    def test_null_recorder_is_the_default(self):
        recorder = get_recorder()
        assert isinstance(recorder, NullRecorder)
        assert recorder.enabled is False
        assert recorder.export_spans() == []

    def test_null_span_still_measures(self):
        with NullRecorder().span("x") as span:
            pass
        assert span.end is not None and span.elapsed >= 0.0

    def test_nesting_parent_and_trace_inheritance(self):
        recorder = Recorder()
        with recorder.span("outer", trace="t1") as outer:
            with recorder.span("inner") as inner:
                pass
        spans = recorder.export_spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["parent"] == outer.span_id
        assert spans[0]["trace"] == "t1"
        assert spans[1]["parent"] is None
        assert inner.span_id != outer.span_id

    def test_emit_files_under_current_span(self):
        recorder = Recorder()
        start = now()
        with recorder.span("req", trace="r1"):
            recorder.emit("queue", start, now(), worker="w0")
        queue, req = recorder.export_spans()
        assert queue["name"] == "queue"
        assert queue["parent"] == req["id"]
        assert queue["trace"] == "r1"
        assert queue["attrs"] == {"worker": "w0"}

    def test_buffer_bound_counts_drops(self):
        recorder = Recorder(max_spans=2)
        for index in range(4):
            with recorder.span(f"s{index}"):
                pass
        assert len(recorder.export_spans()) == 2
        assert recorder.dropped == 2
        recorder.clear()
        assert recorder.export_spans() == [] and recorder.dropped == 0

    def test_merge_buffer_remaps_ids_and_relabels_proc(self):
        worker = Recorder()
        with worker.span("flow", trace="abc"):
            with worker.span("flow.run"):
                pass
        parent = Recorder()
        with parent.span("host"):
            pass
        parent.merge_buffer(worker.export_buffer(), proc="pool:abc")
        spans = parent.export_spans()
        merged = {s["name"]: s for s in spans if s["proc"] == "pool:abc"}
        assert set(merged) == {"flow", "flow.run"}
        assert merged["flow.run"]["parent"] == merged["flow"]["id"]
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))

    def test_merge_buffer_merges_metrics(self):
        worker = Recorder()
        worker.counter("n", 3)
        parent = Recorder()
        parent.merge_buffer(worker.export_buffer())
        assert parent.metrics.counter("n").value == 3

    def test_capture_restores_previous_recorder(self):
        outer = enable()
        try:
            with capture() as inner:
                assert get_recorder() is inner
            assert get_recorder() is outer
        finally:
            disable()
        assert get_recorder().enabled is False


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def _spans(self):
        recorder = Recorder()
        with recorder.span("flow", trace="abc", policy="thermal"):
            with recorder.span("flow.run"):
                pass
        return recorder.export_spans()

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        spans = self._spans()
        path = write_jsonl(tmp_path / "t.jsonl", spans)
        assert read_spans(path) == spans

    def test_chrome_trace_shape(self):
        payload = chrome_trace(self._spans())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"flow", "flow.run"}
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        flow = next(e for e in complete if e["name"] == "flow")
        assert flow["args"] == {"policy": "thermal", "trace": "abc"}
        assert min(e["ts"] for e in complete) == 0.0

    def test_chrome_round_trip_preserves_timing(self, tmp_path):
        spans = self._spans()
        path = write_chrome_trace(tmp_path / "t.json", spans)
        loaded = read_spans(path)
        assert {s["name"] for s in loaded} == {"flow", "flow.run"}
        assert phase_totals(loaded) == pytest.approx(
            phase_totals(spans), abs=1e-5
        )

    def test_phase_summary_ordering(self):
        spans = [
            {"name": "b", "start": 0.0, "end": 2.0},
            {"name": "a", "start": 0.0, "end": 1.0},
            {"name": "a", "start": 0.0, "end": 1.0},
        ]
        rows = phase_summary(spans)
        assert [row["phase"] for row in rows] == ["a", "b"]
        assert rows[0] == {
            "phase": "a", "count": 2, "total_s": 2.0,
            "mean_s": 1.0, "min_s": 1.0, "max_s": 1.0,
        }


# ----------------------------------------------------------------------
# flow instrumentation
# ----------------------------------------------------------------------
class TestFlowSpans:
    def test_phase_spans_and_trace_id(self):
        result, recorder = run_traced(THERMAL_SPEC)
        spans = recorder.export_spans()
        names = {s["name"] for s in spans}
        assert {
            "flow", "flow.library", "flow.floorplan", "flow.thermal_build",
            "flow.schedule", "flow.evaluate", "flow.run",
        } <= names
        digest = spec_hash(THERMAL_SPEC)[:16]
        assert all(s["trace"] == digest for s in spans)
        root = next(s for s in spans if s["name"] == "flow")
        assert root["parent"] is None
        children = [s for s in spans if s["parent"] == root["id"]]
        assert {"flow.library", "flow.run"} <= {s["name"] for s in children}

    def test_phase_span_sum_close_to_root(self):
        _result, recorder = run_traced(THERMAL_SPEC)
        totals = phase_totals(recorder.export_spans())
        covered = totals.get("flow.library", 0.0) + totals.get("flow.run", 0.0)
        assert covered <= totals["flow"]
        assert covered >= 0.5 * totals["flow"]

    def test_provenance_obs_summary(self):
        result, _recorder = run_traced(THERMAL_SPEC)
        summary = result.provenance["obs"]
        assert summary["trace_id"] == spec_hash(THERMAL_SPEC)[:16]
        assert set(summary["phases"]) >= {"build", "run"}
        assert 0.0 <= summary["scheduler_fast_hit_rate"] <= 1.0

    def test_disabled_run_has_no_obs_key_and_same_content(self):
        disabled = Flow().run(SPEC)
        traced, _recorder = run_traced(SPEC)
        assert "obs" not in disabled.provenance
        strip = ("provenance", "timings")
        plain = {
            k: v for k, v in disabled.as_record(suite="t").to_dict().items()
            if k not in strip
        }
        observed = {
            k: v for k, v in traced.as_record(suite="t").to_dict().items()
            if k not in strip
        }
        assert plain == observed

    def test_timings_present_without_recorder(self):
        result = Flow().run(SPEC)
        assert result.timings["build"] > 0.0
        assert result.timings["run"] > 0.0

    def test_flow_metrics_counters(self):
        _result, recorder = run_traced(THERMAL_SPEC)
        exported = {
            entry["name"]: entry["value"]
            for entry in recorder.metrics.export()["counters"]
        }
        assert exported["flow.runs"] == 1
        assert exported["flow.hotspot_queries"] > 0
        assert exported["scheduler.candidates_evaluated"] > 0
        assert exported["scheduler.thermal_fast_queries"] > 0


class TestMigratedStatsShapes:
    def test_scheduler_stats_keep_dict_shape(self):
        result = Flow().run(THERMAL_SPEC)
        scheduler = result.diagnostics["scheduler"]
        assert set(scheduler) == {
            "steps", "candidates_evaluated", "thermal_fast_path",
            "thermal_fast_queries", "thermal_exact_requeries",
        }
        assert all(isinstance(v, int) for v in scheduler.values())

    def test_dse_thermal_stats_keep_dict_shape(self):
        from repro.dse.thermal import IncrementalThermalEvaluator
        from repro.floorplan.geometry import Floorplan

        def plan():
            built = Floorplan()
            built.place("a", 0.0, 0.0, 2.0, 2.0)
            built.place("b", 2.0, 0.0, 2.0, 2.0)
            return built

        evaluator = IncrementalThermalEvaluator(plan())
        assert dict(evaluator.stats) == {
            "incremental": 0, "unchanged": 0,
            "full_rebuilds": 0, "conditioning_fallbacks": 0,
        }
        evaluator.engine_for(plan())
        assert evaluator.stats["unchanged"] == 1
        assert evaluator.evaluations() == 1


# ----------------------------------------------------------------------
# pool propagation
# ----------------------------------------------------------------------
class TestPoolPropagation:
    def test_worker_buffers_merge_exactly_once_in_input_order(self):
        specs = [SPEC, platform_spec("Bm2", policy="heuristic3")]
        with capture() as recorder:
            results = run_many(specs, workers=2)
        assert all(result.obs is None for result in results)
        spans = recorder.export_spans()
        flows = [s for s in spans if s["name"] == "flow"]
        assert [s["proc"] for s in flows] == [
            f"pool:{spec_hash(spec)[:12]}" for spec in specs
        ]
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))
        for flow in flows:
            children = [s for s in spans if s["parent"] == flow["id"]]
            assert {"flow.library", "flow.run"} <= {s["name"] for s in children}
            assert all(s["proc"] == flow["proc"] for s in children)
        counters = {
            entry["name"]: entry["value"]
            for entry in recorder.metrics.export()["counters"]
        }
        assert counters["flow.runs"] == 2
        assert counters["batch.cache.misses"] == 2
        waits = [s for s in spans if s["name"] == "batch.wait"]
        assert len(waits) == 2 and all(s["proc"] == "main" for s in waits)

    def test_cache_hits_counted_and_cached_rows_clean(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_many([SPEC], cache_dir=cache_dir)
        with capture() as recorder:
            results = run_many([SPEC], cache_dir=cache_dir)
        assert results[0].obs is None
        counters = {
            entry["name"]: entry["value"]
            for entry in recorder.metrics.export()["counters"]
        }
        assert counters["batch.cache.hits"] == 1
        assert "batch.cache.misses" not in counters

    def test_untraced_pool_results_carry_no_buffers(self):
        results = run_many([SPEC], workers=2)
        assert results[0].obs is None


# ----------------------------------------------------------------------
# serve integration
# ----------------------------------------------------------------------
class TestServeObs:
    def test_request_spans_and_metrics_endpoint(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import ServeDaemon

        before = get_recorder()
        with ServeDaemon(port=0, workers=2) as daemon:
            client = ServeClient(daemon.url, timeout_s=60.0)
            first = client.submit(SPEC, store=False)
            second = client.submit(SPEC, store=False)
            recorder = get_recorder()
            assert recorder.enabled
            spans = recorder.export_spans()
            requests = [s for s in spans if s["name"] == "serve.request"]
            queues = [s for s in spans if s["name"] == "serve.queue"]
            assert {s["trace"] for s in requests} == {
                first["request_id"], second["request_id"]
            }
            assert len(requests) == 2 and len(queues) == 2
            assert all(
                s["thread"].startswith("serve-worker-") for s in requests
            )
            for queue_span in queues:
                parent = next(
                    s for s in requests if s["trace"] == queue_span["trace"]
                )
                assert queue_span["parent"] == parent["id"]
            flows = [s for s in spans if s["name"] == "flow"]
            assert {s["parent"] for s in flows} == {s["id"] for s in requests}

            text = client.metrics()
            assert "repro_serve_http_requests 2" in text
            assert "repro_serve_jobs_completed 2" in text
            assert "repro_serve_request_latency_s_count 2" in text
            assert "repro_serve_queue_depth 0" in text
            assert "repro_serve_workers 2" in text
        assert get_recorder() is before

    def test_obs_false_daemon_serves_empty_metrics(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import ServeDaemon

        with ServeDaemon(port=0, workers=1, obs=False) as daemon:
            assert not get_recorder().enabled
            client = ServeClient(daemon.url, timeout_s=60.0)
            client.submit(SPEC, store=False)
            assert client.metrics() == ""
            assert daemon.stats()["requests"] == 1


# ----------------------------------------------------------------------
# records: schema v2 + provenance.obs round-trip
# ----------------------------------------------------------------------
class TestRecordSchemaV2:
    def test_schema_version_bumped(self):
        assert RECORD_SCHEMA_VERSION == 2

    def test_traced_record_round_trips_with_obs_summary(self):
        result, _recorder = run_traced(THERMAL_SPEC)
        record = result.as_record(suite="obs")
        payload = record.to_dict()
        assert payload["schema_version"] == 2
        assert "obs" in payload["provenance"]
        wire = json.loads(json.dumps(payload))
        restored = RunRecord.from_dict(wire)
        assert restored.to_dict() == payload
        assert restored.provenance["obs"]["phases"] == pytest.approx(
            payload["provenance"]["obs"]["phases"]
        )

    def test_spec_round_trip_unaffected(self):
        assert FlowSpec.from_json(THERMAL_SPEC.to_json()) == THERMAL_SPEC
