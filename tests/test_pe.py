"""Tests for PE types, instances, and architectures."""

import pytest

from repro.errors import LibraryError, UnknownPETypeError
from repro.library.pe import Architecture, PEInstance, PEType
from repro.library.presets import PLATFORM_PE


def make_type(name="core", w=6.0, h=6.0, **kw):
    return PEType(name, w, h, **kw)


class TestPEType:
    def test_area(self):
        assert make_type(w=4.0, h=5.0).area_mm2 == pytest.approx(20.0)

    @pytest.mark.parametrize("field,value", [
        ("width_mm", 0.0),
        ("height_mm", -1.0),
        ("speed", 0.0),
        ("power_scale", -0.5),
        ("idle_power", -0.1),
        ("cost", -1.0),
    ])
    def test_invalid_fields_rejected(self, field, value):
        kwargs = {"name": "x", "width_mm": 6.0, "height_mm": 6.0}
        kwargs[field] = value
        with pytest.raises(LibraryError):
            PEType(**kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(LibraryError):
            PEType("", 6.0, 6.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_type().speed = 2.0


class TestPEInstance:
    def test_delegates_to_type(self):
        pe = PEInstance("pe0", make_type())
        assert pe.type_name == "core"
        assert pe.area_mm2 == pytest.approx(36.0)

    def test_empty_name_rejected(self):
        with pytest.raises(LibraryError):
            PEInstance("", make_type())


class TestArchitecture:
    def test_add_and_lookup(self):
        arch = Architecture("a")
        arch.add_instance(make_type())
        arch.add_instance(make_type("other", 3.0, 3.0))
        assert len(arch) == 2
        assert arch.pe_names() == ["pe0", "pe1"]
        assert arch.pe("pe1").type_name == "other"
        assert "pe0" in arch and "nope" not in arch

    def test_unknown_pe_raises(self):
        arch = Architecture("a")
        with pytest.raises(UnknownPETypeError):
            arch.pe("ghost")

    def test_duplicate_name_rejected(self):
        arch = Architecture("a")
        arch.add(PEInstance("x", make_type()))
        with pytest.raises(LibraryError):
            arch.add(PEInstance("x", make_type()))

    def test_explicit_instance_name(self):
        arch = Architecture("a")
        pe = arch.add_instance(make_type(), name="dsp_main")
        assert pe.name == "dsp_main"

    def test_type_counts(self):
        arch = Architecture("a")
        arch.add_instance(make_type("t1"))
        arch.add_instance(make_type("t1"))
        arch.add_instance(make_type("t2", 3.0, 3.0))
        assert arch.type_counts() == {"t1": 2, "t2": 1}

    def test_totals(self):
        t = make_type(w=2.0, h=2.0, cost=1.5, idle_power=0.2)
        arch = Architecture.homogeneous("h", t, 3)
        assert arch.total_area_mm2 == pytest.approx(12.0)
        assert arch.total_cost == pytest.approx(4.5)
        assert arch.total_idle_power == pytest.approx(0.6)

    def test_homogeneous_count(self):
        arch = Architecture.homogeneous("h", PLATFORM_PE, 4)
        assert len(arch) == 4
        assert all(pe.type_name == PLATFORM_PE.name for pe in arch)

    def test_homogeneous_zero_rejected(self):
        with pytest.raises(LibraryError):
            Architecture.homogeneous("h", PLATFORM_PE, 0)

    def test_insertion_order_preserved(self):
        arch = Architecture("a")
        for name in ("z", "m", "a"):
            arch.add(PEInstance(name, make_type()))
        assert arch.pe_names() == ["z", "m", "a"]

    def test_empty_name_rejected(self):
        with pytest.raises(LibraryError):
            Architecture("")
