"""Named PE catalogues: registry, support rules, spec wiring."""

import pytest

from repro.errors import FlowError, LibraryError
from repro.flow import LibrarySpec, platform_spec, run_flow
from repro.library import (
    PLATFORM_PE,
    CatalogueSpec,
    PEType,
    catalogue_by_name,
    catalogue_names,
    default_catalogue,
    library_for_graph,
    register_catalogue,
)
from repro.taskgraph import benchmark


class TestRegistry:
    def test_builtins_registered(self):
        names = catalogue_names()
        for name in ("default", "big-little", "accel-heavy", "many-core"):
            assert name in names

    def test_hyphen_underscore_interchangeable(self):
        assert catalogue_by_name("big_little") is catalogue_by_name("big-little")
        assert catalogue_by_name("many_core").name == "many-core"

    def test_unknown_name_lists_available(self):
        with pytest.raises(FlowError, match="available"):
            catalogue_by_name("quantum")

    def test_shadowing_rejected_across_spellings(self):
        cat = catalogue_by_name("default")
        with pytest.raises(FlowError, match="already registered"):
            register_catalogue(
                CatalogueSpec(
                    name="big_little",
                    pe_types=cat.pe_types,
                    general_purpose=cat.general_purpose,
                )
            )

    def test_reregistering_same_object_is_idempotent(self):
        register_catalogue(catalogue_by_name("default"))


class TestCatalogueSpec:
    def test_builtins_are_well_formed(self):
        for name in catalogue_names():
            cat = catalogue_by_name(name)
            assert cat.general_purpose <= set(cat.type_names())
            assert cat.platform_pe in cat.type_names()
            assert len(cat) == len(cat.type_names())

    def test_default_mirrors_preset_catalogue(self):
        cat = catalogue_by_name("default")
        assert list(cat.pe_types) == default_catalogue()
        assert cat.platform_pe == PLATFORM_PE.name

    def test_unknown_pe_type_listed(self):
        with pytest.raises(LibraryError, match="available"):
            catalogue_by_name("default").pe_type("mainframe")

    def test_needs_general_purpose_type(self):
        with pytest.raises(LibraryError, match="general-purpose"):
            CatalogueSpec(name="broken", pe_types=(PLATFORM_PE,))

    def test_general_purpose_must_exist(self):
        with pytest.raises(LibraryError, match="not in the catalogue"):
            CatalogueSpec(
                name="broken",
                pe_types=(PLATFORM_PE,),
                general_purpose=frozenset({"ghost"}),
            )

    def test_supports_rule(self):
        cat = catalogue_by_name("accel-heavy")
        assert cat.supports(PLATFORM_PE.name, 1)
        assert cat.supports("stream-accel", 0)
        assert cat.supports("stream-accel", 2)
        assert not cat.supports("stream-accel", 1)


class TestLibraryGeneration:
    def test_default_catalogue_spec_is_byte_identical(self):
        """CatalogueSpec('default') and the legacy list path must agree."""
        graph = benchmark("Bm1")
        legacy = library_for_graph(graph)
        via_spec = library_for_graph(graph, catalogue=catalogue_by_name("default"))
        assert legacy.entries() == via_spec.entries()

    def test_big_little_covers_every_task_type(self):
        graph = benchmark("Bm1")
        library = library_for_graph(
            graph, catalogue=catalogue_by_name("big-little")
        )
        types = {task.task_type for task in graph}
        for task_type in types:
            pes = library.supported_pe_types(task_type)
            assert set(pes) == {"big-core", "little-core"}

    def test_accel_heavy_coverage_rule(self):
        graph = benchmark("Bm1")
        library = library_for_graph(
            graph, catalogue=catalogue_by_name("accel-heavy")
        )
        task_types = sorted({task.task_type for task in graph})
        for index, task_type in enumerate(task_types):
            accel_supported = "stream-accel" in library.supported_pe_types(task_type)
            assert accel_supported == (index % 2 == 0)


class TestFlowWiring:
    def test_platform_flow_on_big_little(self):
        spec = platform_spec(
            "Bm1", policy="heuristic3",
            library=LibrarySpec(catalogue="big-little"),
        )
        result = run_flow(spec)
        assert all(pe.type_name == "big-core" for pe in result.architecture)
        assert result.evaluation.total_power > 0.0

    def test_architecture_pe_override(self):
        from repro.flow import ArchitectureSpec

        spec = platform_spec(
            "Bm1", policy="heuristic3",
            library=LibrarySpec(catalogue="big-little"),
            architecture=ArchitectureSpec(count=4, pe="little-core"),
        )
        result = run_flow(spec)
        assert all(pe.type_name == "little-core" for pe in result.architecture)

    def test_heterogeneous_pes(self):
        from repro.flow import ArchitectureSpec

        spec = platform_spec(
            "Bm1", policy="heuristic3",
            library=LibrarySpec(catalogue="big-little"),
            architecture=ArchitectureSpec(
                pes=("big-core", "little-core", "little-core")
            ),
        )
        result = run_flow(spec)
        assert [pe.type_name for pe in result.architecture] == [
            "big-core", "little-core", "little-core",
        ]
        assert spec.architecture.count == 3

    def test_conflicting_count_and_pes_rejected(self):
        from repro.errors import FlowSpecError
        from repro.flow import ArchitectureSpec

        with pytest.raises(FlowSpecError, match="contradicts"):
            ArchitectureSpec(count=8, pes=("big-core", "little-core"))
        with pytest.raises(FlowSpecError, match="not both"):
            platform_spec(
                "Bm1", count=8, architecture=ArchitectureSpec(pe="little-core")
            )
        # None and the matching count are both fine
        assert ArchitectureSpec(pes=("big-core",)).count == 1
        assert ArchitectureSpec(count=1, pes=("big-core",)).count == 1
        assert ArchitectureSpec() == ArchitectureSpec(count=4)

    def test_unknown_catalogue_fails_at_run(self):
        spec = platform_spec("Bm1", library=LibrarySpec(catalogue="nope"))
        with pytest.raises(FlowError, match="catalogue"):
            run_flow(spec)

    def test_leakage_runs_on_the_named_solver(self):
        """leakage + gridmodel must solve on the grid adapter, not on a
        silently substituted HotSpot model."""
        from repro.flow import LeakageSpec, ThermalSpec
        from repro.flow.registry import THERMAL_SOLVERS
        from repro.floorplan import platform_floorplan
        from repro.library import default_platform
        from repro.thermal import default_package

        adapter = THERMAL_SOLVERS.get("gridmodel")(
            platform_floorplan(default_platform()), default_package(), None
        )
        assert adapter.block_names == ["pe0", "pe1", "pe2", "pe3"]
        result = run_flow(
            platform_spec(
                "Bm1", policy="heuristic3",
                thermal=ThermalSpec(solver="gridmodel"),
                leakage=LeakageSpec(enabled=True),
            )
        )
        assert result.leakage is not None
        assert result.leakage.total_leakage > 0.0

    def test_default_results_unchanged(self):
        """The catalogue layer must not move the pinned Bm1 numbers."""
        result = run_flow(platform_spec("Bm1", policy="thermal"))
        assert result.evaluation.total_power == pytest.approx(14.8728, abs=1e-3)
        assert result.evaluation.makespan == pytest.approx(765.858, abs=1e-3)
