"""Tests for the annealing and genetic floorplanners and fixed platforms."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.annealing import AnnealingConfig, anneal_floorplan
from repro.floorplan.genetic import GeneticConfig, evolve_floorplan
from repro.floorplan.objectives import (
    FloorplanObjective,
    area_objective,
    thermal_objective,
)
from repro.floorplan.platform import grid_floorplan, platform_floorplan, row_floorplan
from repro.library.pe import Architecture, PEType
from repro.library.presets import default_platform

FAST_SA = AnnealingConfig(
    initial_temperature=50.0,
    final_temperature=1.0,
    cooling_rate=0.8,
    moves_per_temperature=8,
)
FAST_GA = GeneticConfig(population_size=8, generations=6)


def hetero_arch(count=5):
    arch = Architecture("hetero")
    sizes = [(6.0, 6.0), (5.0, 4.0), (3.5, 3.5), (7.0, 7.0), (4.0, 2.0)]
    for index in range(count):
        w, h = sizes[index % len(sizes)]
        arch.add_instance(PEType(f"t{index}", w, h))
    return arch


class TestObjectives:
    def test_area_objective_value(self, two_block_plan):
        assert area_objective()(two_block_plan) == pytest.approx(72.0)

    def test_aspect_penalty_applies(self):
        from repro.floorplan.geometry import Floorplan

        thin = Floorplan()
        thin.place("a", 0, 0, 40.0, 2.0)  # aspect 20 >> limit 3
        objective = FloorplanObjective(area_weight=0.0, aspect_weight=1.0)
        assert objective(thin) == pytest.approx(17.0**2)

    def test_thermal_objective_requires_evaluator(self):
        with pytest.raises(FloorplanError):
            FloorplanObjective(temp_weight=1.0)

    def test_thermal_objective_uses_evaluator(self, two_block_plan):
        objective = thermal_objective(lambda plan: 100.0, area_weight=0.0)
        assert objective(two_block_plan) == pytest.approx(100.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(FloorplanError):
            FloorplanObjective(area_weight=-1.0)

    def test_wirelength_term(self, two_block_plan):
        objective = FloorplanObjective(
            area_weight=0.0,
            aspect_weight=0.0,
            wirelength_weight=1.0,
            nets=[("left", "right", 1.0)],
        )
        assert objective(two_block_plan) == pytest.approx(6.0)


class TestAnnealing:
    def test_result_is_valid_floorplan(self):
        result = anneal_floorplan(hetero_arch(), config=FAST_SA, seed=1)
        result.floorplan.validate()
        assert set(result.floorplan.block_names()) == {
            pe.name for pe in hetero_arch()
        }

    def test_deterministic(self):
        a = anneal_floorplan(hetero_arch(), config=FAST_SA, seed=5)
        b = anneal_floorplan(hetero_arch(), config=FAST_SA, seed=5)
        assert a.cost == b.cost
        assert a.expression.tokens == b.expression.tokens

    def test_improves_over_initial_row(self):
        # the initial expression of 5 mixed blocks is far from area-optimal;
        # even a short anneal must not end *worse* than it started
        from repro.floorplan.slicing import PolishExpression

        arch = hetero_arch()
        dims = {pe.name: (pe.pe_type.width_mm, pe.pe_type.height_mm) for pe in arch}
        initial_cost = area_objective()(
            PolishExpression.initial(dims, order=arch.pe_names()).evaluate()
        )
        result = anneal_floorplan(arch, config=FAST_SA, seed=2)
        assert result.cost <= initial_cost + 1e-9

    def test_single_block_shortcut(self):
        arch = hetero_arch(1)
        result = anneal_floorplan(arch, config=FAST_SA, seed=1)
        assert result.evaluations == 1
        assert len(result.floorplan) == 1

    def test_empty_architecture_rejected(self):
        with pytest.raises(FloorplanError):
            anneal_floorplan(Architecture("empty"), config=FAST_SA)

    def test_bad_config_rejected(self):
        with pytest.raises(FloorplanError):
            AnnealingConfig(initial_temperature=1.0, final_temperature=2.0)
        with pytest.raises(FloorplanError):
            AnnealingConfig(cooling_rate=1.5)
        with pytest.raises(FloorplanError):
            AnnealingConfig(moves_per_temperature=0)


class TestGenetic:
    def test_result_is_valid_floorplan(self):
        result = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=1)
        result.floorplan.validate()
        assert len(result.floorplan) == 5

    def test_deterministic(self):
        a = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=9)
        b = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=9)
        assert a.cost == b.cost
        assert a.expression.tokens == b.expression.tokens

    def test_history_monotone_nonincreasing(self):
        # elitism guarantees best-so-far never regresses
        result = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=3)
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_single_block_shortcut(self):
        result = evolve_floorplan(hetero_arch(1), config=FAST_GA, seed=1)
        assert result.generations_run == 0

    def test_thermal_objective_spreads_hot_blocks(self):
        # two hot blocks + two cold: with a thermal objective the GA should
        # find a plan whose peak temperature is no worse than the area GA's
        from repro.thermal.hotspot import HotSpotModel

        arch = hetero_arch(4)
        powers = {"pe0": 12.0, "pe1": 12.0, "pe2": 0.5, "pe3": 0.5}

        def peak(plan):
            return HotSpotModel(plan).peak_temperature(powers)

        area_result = evolve_floorplan(arch, config=FAST_GA, seed=4)
        thermal_result = evolve_floorplan(
            arch,
            objective=thermal_objective(peak),
            config=FAST_GA,
            seed=4,
        )
        assert peak(thermal_result.floorplan) <= peak(area_result.floorplan) + 1e-6

    def test_bad_config_rejected(self):
        with pytest.raises(FloorplanError):
            GeneticConfig(population_size=1)
        with pytest.raises(FloorplanError):
            GeneticConfig(tournament_size=1)
        with pytest.raises(FloorplanError):
            GeneticConfig(crossover_rate=1.5)
        with pytest.raises(FloorplanError):
            GeneticConfig(elite_count=24, population_size=24)


class TestPlatformLayouts:
    def test_grid_2x2(self, platform4):
        plan = grid_floorplan(platform4, columns=2)
        plan.validate()
        assert plan.die_size() == (pytest.approx(12.0), pytest.approx(12.0))

    def test_grid_near_square_default(self):
        plan = grid_floorplan(default_platform(count=9))
        assert plan.die_size() == (pytest.approx(18.0), pytest.approx(18.0))

    def test_grid_spacing(self, platform4):
        plan = grid_floorplan(platform4, columns=2, spacing_mm=1.0)
        assert plan.die_size() == (pytest.approx(13.0), pytest.approx(13.0))
        assert plan.adjacency() == {}  # spaced blocks do not touch

    def test_row_layout(self, platform4):
        plan = row_floorplan(platform4)
        plan.validate()
        assert plan.die_size() == (pytest.approx(24.0), pytest.approx(6.0))
        # three contacts in a row of four
        assert len(plan.adjacency()) == 3

    def test_platform_floorplan_is_row(self, platform4):
        plan = platform_floorplan(platform4)
        assert plan.die_size() == (pytest.approx(24.0), pytest.approx(6.0))

    def test_platform_floorplan_breaks_symmetry(self, platform4):
        # middle PEs must be thermally distinguishable from end PEs —
        # this is what makes Avg_Temp a useful placement signal (DESIGN.md)
        from repro.thermal.hotspot import HotSpotModel

        plan = platform_floorplan(platform4)
        model = HotSpotModel(plan)
        names = plan.block_names()
        temp_end = model.average_temperature({names[0]: 10.0})
        temp_mid = model.average_temperature({names[1]: 10.0})
        assert temp_mid > temp_end

    def test_empty_architecture_rejected(self):
        with pytest.raises(FloorplanError):
            grid_floorplan(Architecture("e"))
        with pytest.raises(FloorplanError):
            row_floorplan(Architecture("e"))

    def test_negative_spacing_rejected(self, platform4):
        with pytest.raises(FloorplanError):
            grid_floorplan(platform4, spacing_mm=-1.0)
        with pytest.raises(FloorplanError):
            row_floorplan(platform4, spacing_mm=-0.5)


class TestInjectedSearchHooks:
    """The DSE injection refactor must leave legacy behaviour untouched:
    ``rng=as_random(seed)`` and a default-replicating ``evaluate`` pin
    byte-identical results against the plain ``seed=`` path."""

    def test_annealer_injected_rng_matches_seed_path(self):
        from repro.rng import as_random

        legacy = anneal_floorplan(hetero_arch(), config=FAST_SA, seed=5)
        injected = anneal_floorplan(
            hetero_arch(), config=FAST_SA, rng=as_random(5)
        )
        assert injected.cost == legacy.cost
        assert injected.expression.tokens == legacy.expression.tokens
        assert injected.evaluations == legacy.evaluations

    def test_genetic_injected_rng_matches_seed_path(self):
        from repro.rng import as_random

        legacy = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=9)
        injected = evolve_floorplan(
            hetero_arch(), config=FAST_GA, rng=as_random(9)
        )
        assert injected.cost == legacy.cost
        assert injected.expression.tokens == legacy.expression.tokens

    def test_annealer_injected_default_evaluate_is_identical(self):
        objective = area_objective()

        def evaluate(expression):
            plan = expression.evaluate().normalised()
            return objective(plan), plan

        legacy = anneal_floorplan(hetero_arch(), config=FAST_SA, seed=5)
        injected = anneal_floorplan(
            hetero_arch(), config=FAST_SA, seed=5, evaluate=evaluate
        )
        assert injected.cost == legacy.cost
        assert injected.expression.tokens == legacy.expression.tokens

    def test_genetic_injected_default_evaluate_is_identical(self):
        objective = area_objective()

        def evaluate(expression):
            plan = expression.evaluate().normalised()
            return objective(plan), plan

        legacy = evolve_floorplan(hetero_arch(), config=FAST_GA, seed=9)
        injected = evolve_floorplan(
            hetero_arch(), config=FAST_GA, seed=9, evaluate=evaluate
        )
        assert injected.cost == legacy.cost
        assert injected.expression.tokens == legacy.expression.tokens

    def test_custom_evaluate_drives_the_search(self):
        calls = []

        def evaluate(expression):
            plan = expression.evaluate().normalised()
            calls.append(plan)
            return float(len(calls)), plan  # monotone: first plan "wins"

        result = anneal_floorplan(
            hetero_arch(), config=FAST_SA, seed=5, evaluate=evaluate
        )
        assert result.evaluations == len(calls)
        assert result.cost == 1.0  # ever-rising costs keep the initial plan
