"""Tests for the DC policies (the Pow / Avg_Temp term)."""

import pytest

from repro.core.heuristics import (
    POLICY_NAMES,
    BaselinePolicy,
    CumulativePowerPolicy,
    DCContext,
    TaskEnergyPolicy,
    TaskPowerPolicy,
    ThermalPolicy,
    policy_by_name,
)
from repro.errors import SchedulingError
from repro.power.model import PowerAccumulator
from repro.thermal.hotspot import HotSpotModel


def make_ctx(**overrides):
    accumulator = PowerAccumulator(["pe0", "pe1"])
    accumulator.record("pe0", power=4.0, duration=10.0)  # 40 J committed
    defaults = dict(
        task_name="t",
        pe_name="pe0",
        wcet=10.0,
        power=6.0,
        energy=60.0,
        ready_time=0.0,
        start=0.0,
        finish=10.0,
        accumulator=accumulator,
        horizon=100.0,
        thermal=None,
        pe_to_block=None,
    )
    defaults.update(overrides)
    return DCContext(**defaults)


class TestRegistry:
    def test_all_names_registered(self):
        # paper policies first, then the registered extension variants
        assert POLICY_NAMES == (
            "baseline",
            "heuristic1",
            "heuristic2",
            "heuristic3",
            "thermal",
            "thermal-peak",
            "thermal-hybrid",
        )

    def test_policy_by_name_default_weight(self):
        policy = policy_by_name("heuristic1")
        assert isinstance(policy, TaskPowerPolicy)
        assert policy.weight == TaskPowerPolicy().weight

    def test_policy_by_name_custom_weight(self):
        assert policy_by_name("heuristic3", weight=0.5).weight == 0.5

    def test_extension_policies_reachable_by_name(self):
        from repro.extensions.policies import HybridThermalPolicy, ThermalPeakPolicy

        assert isinstance(policy_by_name("thermal-peak"), ThermalPeakPolicy)
        # underscores are interchangeable with hyphens
        assert isinstance(policy_by_name("thermal_peak"), ThermalPeakPolicy)
        hybrid = policy_by_name("thermal_hybrid", peak_fraction=0.25)
        assert isinstance(hybrid, HybridThermalPolicy)
        assert hybrid.peak_fraction == 0.25

    def test_hyphen_resolves_underscore_registered_names(self, monkeypatch):
        from repro.core import heuristics

        monkeypatch.setitem(heuristics._REGISTRY, "tmp_policy", TaskPowerPolicy)
        assert isinstance(policy_by_name("tmp-policy"), TaskPowerPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulingError):
            policy_by_name("voodoo")

    def test_bad_params_raise_scheduling_error(self):
        with pytest.raises(SchedulingError):
            policy_by_name("baseline", nonsense_param=1.0)

    def test_register_rejects_name_collisions(self):
        from repro.core.heuristics import register_dc_policy

        class Impostor(TaskPowerPolicy):
            name = "heuristic1"

        with pytest.raises(SchedulingError):
            register_dc_policy(Impostor)

    def test_negative_weight_rejected(self):
        with pytest.raises(SchedulingError):
            TaskPowerPolicy(-1.0)


class TestPenalties:
    def test_baseline_is_zero(self):
        assert BaselinePolicy().penalty(make_ctx()) == 0.0

    def test_heuristic1_scales_task_power(self):
        policy = TaskPowerPolicy(weight=2.0)
        assert policy.penalty(make_ctx(power=6.0)) == pytest.approx(12.0)

    def test_heuristic3_scales_task_energy(self):
        policy = TaskEnergyPolicy(weight=0.1)
        assert policy.penalty(make_ctx(energy=60.0)) == pytest.approx(6.0)

    def test_heuristic2_includes_candidate(self):
        policy = CumulativePowerPolicy(weight=1.0)
        # (40 J committed + 60 J candidate) / 100 horizon = 1.0 W
        assert policy.penalty(make_ctx()) == pytest.approx(1.0)

    def test_heuristic2_prefers_less_loaded_pe(self):
        policy = CumulativePowerPolicy(weight=1.0)
        loaded = policy.penalty(make_ctx(pe_name="pe0"))
        empty = policy.penalty(make_ctx(pe_name="pe1"))
        assert empty < loaded

    def test_thermal_requires_model(self):
        with pytest.raises(SchedulingError):
            ThermalPolicy().penalty(make_ctx(thermal=None))

    def test_thermal_uses_average_temperature(self, platform_plan):
        model = HotSpotModel(platform_plan)
        accumulator = PowerAccumulator(platform_plan.block_names())
        ctx = make_ctx(
            pe_name="pe0",
            accumulator=accumulator,
            thermal=model,
            horizon=10.0,
            energy=50.0,  # 5 W average over the horizon
        )
        policy = ThermalPolicy(weight=1.0)
        expected = model.average_temperature({"pe0": 5.0})
        assert policy.penalty(ctx) == pytest.approx(expected)

    def test_thermal_pe_to_block_mapping(self, platform_plan):
        model = HotSpotModel(platform_plan)
        accumulator = PowerAccumulator(["cpu"])
        ctx = make_ctx(
            pe_name="cpu",
            accumulator=accumulator,
            thermal=model,
            horizon=10.0,
            energy=50.0,
            pe_to_block={"cpu": "pe2"},
        )
        policy = ThermalPolicy(weight=1.0)
        expected = model.average_temperature({"pe2": 5.0})
        assert policy.penalty(ctx) == pytest.approx(expected)

    def test_weights_scale_linearly(self):
        ctx = make_ctx()
        assert TaskPowerPolicy(4.0).penalty(ctx) == pytest.approx(
            2.0 * TaskPowerPolicy(2.0).penalty(ctx)
        )

    def test_requires_thermal_flags(self):
        assert ThermalPolicy.requires_thermal
        assert not BaselinePolicy.requires_thermal
        assert not TaskEnergyPolicy.requires_thermal
