"""Tests for the transcribed paper data (Tables 1-3)."""

import pytest

from repro.experiments.paper_data import (
    PAPER_ROWS,
    TABLE1_COSYNTHESIS,
    TABLE1_PLATFORM,
    TABLE2,
    TABLE3,
    table1_rows,
    table2_rows,
    table3_rows,
)

BENCHMARKS = ["Bm1", "Bm2", "Bm3", "Bm4"]


def test_table1_covers_all_benchmarks_and_policies():
    for table in (TABLE1_COSYNTHESIS, TABLE1_PLATFORM):
        assert sorted(table) == BENCHMARKS
        for by_policy in table.values():
            assert sorted(by_policy) == [
                "baseline",
                "heuristic1",
                "heuristic2",
                "heuristic3",
            ]


def test_tables_2_3_cover_both_approaches():
    for table in (TABLE2, TABLE3):
        assert sorted(table) == BENCHMARKS
        for by_approach in table.values():
            assert sorted(by_approach) == ["power_aware", "thermal_aware"]


def test_max_temp_never_below_avg_temp():
    for table in (TABLE1_COSYNTHESIS, TABLE1_PLATFORM, TABLE2, TABLE3):
        for by_key in table.values():
            for power, max_temp, avg_temp in by_key.values():
                assert max_temp >= avg_temp
                assert power > 0.0


def test_paper_headline_reductions_roughly_recomputable():
    """The paper's quoted reductions roughly follow from its own rows.

    Note: the paper is internally inconsistent here — averaging Table 2's
    rows gives 13.2 °C max / 8.8 °C avg, while the text quotes 10.9 / 6.95.
    Table 3 recomputes to 9.2 / 5.5 against the quoted 9.75 / 5.02.  We
    therefore only check the quoted numbers to ±2.5 °C; EXPERIMENTS.md
    records the discrepancy.
    """

    def reductions(table):
        max_deltas, avg_deltas = [], []
        for by_approach in table.values():
            _, p_max, p_avg = by_approach["power_aware"]
            _, t_max, t_avg = by_approach["thermal_aware"]
            max_deltas.append(p_max - t_max)
            avg_deltas.append(p_avg - t_avg)
        n = len(max_deltas)
        return sum(max_deltas) / n, sum(avg_deltas) / n

    t2_max, t2_avg = reductions(TABLE2)
    assert t2_max == pytest.approx(PAPER_ROWS["table2_max_temp_reduction"], abs=2.5)
    assert t2_avg == pytest.approx(PAPER_ROWS["table2_avg_temp_reduction"], abs=2.5)
    t3_max, t3_avg = reductions(TABLE3)
    assert t3_max == pytest.approx(PAPER_ROWS["table3_max_temp_reduction"], abs=2.5)
    assert t3_avg == pytest.approx(PAPER_ROWS["table3_avg_temp_reduction"], abs=2.5)


def test_table2_thermal_always_cooler():
    for by_approach in TABLE2.values():
        _, p_max, p_avg = by_approach["power_aware"]
        _, t_max, t_avg = by_approach["thermal_aware"]
        assert t_max < p_max
        assert t_avg < p_avg


def test_table3_thermal_always_cooler():
    for by_approach in TABLE3.values():
        _, p_max, p_avg = by_approach["power_aware"]
        _, t_max, t_avg = by_approach["thermal_aware"]
        assert t_max < p_max
        assert t_avg < p_avg


def test_table2_power_rows_match_table1_h3():
    """Table 2's power-aware column is Table 1's co-synthesis heuristic 3."""
    for name in BENCHMARKS:
        assert TABLE2[name]["power_aware"] == TABLE1_COSYNTHESIS[name]["heuristic3"]


def test_table3_power_rows_match_table1_h3():
    for name in BENCHMARKS:
        assert TABLE3[name]["power_aware"] == TABLE1_PLATFORM[name]["heuristic3"]


def test_flat_row_helpers():
    rows1 = table1_rows()
    assert len(rows1) == 4 * 4 * 2  # benchmarks x policies x architectures
    assert len(table2_rows()) == 8
    assert len(table3_rows()) == 8
    for row in rows1 + table2_rows() + table3_rows():
        assert "paper_max_temp" in row
