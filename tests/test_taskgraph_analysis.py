"""Tests for task-graph shape statistics."""

import pytest

from repro.taskgraph.analysis import (
    graph_stats,
    parallelism_profile,
    type_histogram,
)
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.graph import TaskGraph


def test_parallelism_profile_diamond(diamond_graph):
    assert parallelism_profile(diamond_graph) == [1, 2, 1]


def test_parallelism_profile_chain(chain_graph):
    assert parallelism_profile(chain_graph) == [1] * 5


def test_parallelism_profile_empty():
    assert parallelism_profile(TaskGraph("e", 1.0)) == []


def test_type_histogram(diamond_graph):
    assert type_histogram(diamond_graph) == {"type0": 2, "type1": 1, "type2": 1}


def test_graph_stats_diamond(diamond_graph):
    stats = graph_stats(diamond_graph)
    assert stats.num_tasks == 4
    assert stats.num_edges == 4
    assert stats.depth == 3
    assert stats.max_width == 2
    assert stats.num_sources == 1
    assert stats.num_sinks == 1
    assert stats.edge_density == pytest.approx(1.0)
    assert stats.num_task_types == 3


def test_graph_stats_row_is_flat_dict(diamond_graph):
    row = graph_stats(diamond_graph).as_row()
    assert row["name"] == "diamond"
    assert row["tasks"] == 4
    assert isinstance(row["density"], float)


def test_stats_sum_over_profile_equals_tasks():
    for name in ("Bm1", "Bm2", "Bm3", "Bm4"):
        graph = benchmark(name)
        assert sum(parallelism_profile(graph)) == graph.num_tasks


def test_benchmark_widths_fit_four_pe_platform():
    # the platform experiments use four PEs; the generated benchmarks keep
    # per-level parallelism in the configured 1..5 band so four PEs are a
    # sensible match (mirrors the paper's choice)
    for name in ("Bm1", "Bm2", "Bm3", "Bm4"):
        profile = parallelism_profile(benchmark(name))
        assert max(profile) <= 5
