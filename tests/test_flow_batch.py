"""run_many: ordering, dedup, the on-disk cache, and worker pools."""

import pickle

import pytest

import repro.core.scheduler as scheduler_module
from repro.errors import FlowError
from repro.flow import clear_cache, iter_results, platform_spec, run_many, spec_hash


def sweep_specs():
    return [
        platform_spec(bench, policy=policy)
        for bench in ("Bm1", "Bm2")
        for policy in ("heuristic3", "thermal")
    ]


class TestRunMany:
    def test_results_in_input_order(self):
        specs = sweep_specs()
        results = run_many(specs)
        assert [r.spec for r in results] == specs
        assert [r.evaluation.benchmark for r in results] == [
            "Bm1", "Bm1", "Bm2", "Bm2",
        ]

    def test_duplicate_specs_share_one_result(self):
        spec = platform_spec("Bm1", policy="heuristic3")
        results = run_many([spec, spec, spec])
        assert results[0] is results[1] is results[2]

    def test_rejects_non_spec_items(self):
        with pytest.raises(FlowError):
            run_many([platform_spec("Bm1"), "Bm2"])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(FlowError):
            run_many([platform_spec("Bm1")], workers=0)

    def test_pool_matches_serial(self):
        specs = sweep_specs()[:2]
        serial = run_many(specs)
        pooled = run_many(specs, workers=2)
        assert [r.evaluation for r in serial] == [r.evaluation for r in pooled]
        assert all(r.provenance["worker"] == "pool" for r in pooled)


class TestCache:
    def test_cache_roundtrip_and_hit_flags(self, tmp_path):
        specs = sweep_specs()[:2]
        first = run_many(specs, cache_dir=tmp_path)
        second = run_many(specs, cache_dir=tmp_path)
        assert all(not r.provenance["cache_hit"] for r in first)
        assert all(r.provenance["cache_hit"] for r in second)
        assert [r.evaluation for r in first] == [r.evaluation for r in second]

    def test_cache_hit_invokes_zero_scheduler_runs(self, tmp_path, monkeypatch):
        """Satellite acceptance: a warm cache never re-enters the ASP."""
        spec = platform_spec("Bm1", policy="thermal")
        run_many([spec], cache_dir=tmp_path)

        calls = {"n": 0}
        original = scheduler_module.ListScheduler.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(scheduler_module.ListScheduler, "run", counting_run)
        results = run_many([spec], cache_dir=tmp_path)
        assert calls["n"] == 0
        assert results[0].provenance["cache_hit"]
        assert results[0].evaluation.benchmark == "Bm1"

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = platform_spec("Bm1", policy="heuristic3")
        run_many([spec], cache_dir=tmp_path)
        [entry] = list(tmp_path.glob("*.flowresult.pkl"))
        entry.write_bytes(b"not a pickle")
        results = run_many([spec], cache_dir=tmp_path)
        assert not results[0].provenance["cache_hit"]

    def test_cache_keyed_by_spec_hash(self, tmp_path):
        spec = platform_spec("Bm1", policy="heuristic3")
        run_many([spec], cache_dir=tmp_path)
        assert (tmp_path / f"{spec_hash(spec)}.flowresult.pkl").is_file()

    def test_clear_cache(self, tmp_path):
        specs = sweep_specs()[:2]
        run_many(specs, cache_dir=tmp_path)
        assert clear_cache(tmp_path) == 2
        assert clear_cache(tmp_path) == 0


class TestCacheVersionStamp:
    """Satellite: version-stamped pickles; mismatches are misses."""

    def _entry(self, tmp_path, spec):
        run_many([spec], cache_dir=tmp_path)
        return tmp_path / f"{spec_hash(spec)}.flowresult.pkl"

    def test_payload_carries_both_version_coordinates(self, tmp_path):
        import repro
        from repro.results import RECORD_SCHEMA_VERSION

        entry = self._entry(tmp_path, platform_spec("Bm1", policy="thermal"))
        payload = pickle.loads(entry.read_bytes())
        assert payload["stamp"] == {
            "repro_version": repro.__version__,
            "record_schema": RECORD_SCHEMA_VERSION,
        }

    def test_stale_library_version_is_a_miss(self, tmp_path):
        spec = platform_spec("Bm1", policy="thermal")
        entry = self._entry(tmp_path, spec)
        payload = pickle.loads(entry.read_bytes())
        payload["stamp"]["repro_version"] = "0.0.1"
        entry.write_bytes(pickle.dumps(payload))
        results = run_many([spec], cache_dir=tmp_path)
        assert not results[0].provenance["cache_hit"]

    def test_stale_record_schema_is_a_miss(self, tmp_path):
        spec = platform_spec("Bm1", policy="thermal")
        entry = self._entry(tmp_path, spec)
        payload = pickle.loads(entry.read_bytes())
        payload["stamp"]["record_schema"] = -1
        entry.write_bytes(pickle.dumps(payload))
        results = run_many([spec], cache_dir=tmp_path)
        assert not results[0].provenance["cache_hit"]

    def test_legacy_bare_result_pickle_is_a_miss(self, tmp_path):
        """Pre-versioning caches pickled the FlowResult directly; those
        payloads must never replay."""
        spec = platform_spec("Bm1", policy="thermal")
        entry = self._entry(tmp_path, spec)
        payload = pickle.loads(entry.read_bytes())
        entry.write_bytes(pickle.dumps(payload["result"]))  # the old format
        results = run_many([spec], cache_dir=tmp_path)
        assert not results[0].provenance["cache_hit"]

    def test_matching_stamp_still_hits(self, tmp_path):
        spec = platform_spec("Bm1", policy="thermal")
        self._entry(tmp_path, spec)
        results = run_many([spec], cache_dir=tmp_path)
        assert results[0].provenance["cache_hit"]

    def test_stale_entries_recompute_in_the_pool(self, tmp_path):
        """A cache full of stale pickles must classify as misses up
        front, so workers>1 still parallelises instead of silently
        recomputing the grid serially."""
        specs = sweep_specs()[:2]
        run_many(specs, cache_dir=tmp_path)
        for spec in specs:
            entry = tmp_path / f"{spec_hash(spec)}.flowresult.pkl"
            payload = pickle.loads(entry.read_bytes())
            payload["stamp"]["repro_version"] = "0.0.1"
            entry.write_bytes(pickle.dumps(payload))
        results = run_many(specs, workers=2, cache_dir=tmp_path)
        assert all(r.provenance["worker"] == "pool" for r in results)
        assert all(not r.provenance["cache_hit"] for r in results)


class TestIterResults:
    def test_yields_in_input_order_with_shared_duplicates(self):
        spec_a = platform_spec("Bm1", policy="heuristic3")
        spec_b = platform_spec("Bm1", policy="thermal")
        pairs = list(iter_results([spec_a, spec_b, spec_a]))
        assert [index for index, _ in pairs] == [0, 1, 2]
        assert pairs[0][1] is pairs[2][1]
        assert pairs[0][1] is not pairs[1][1]

    def test_retains_only_results_still_needed(self):
        """Distinct specs stream through without accumulating: after each
        yield, previously yielded results are no longer referenced by
        the generator (the bench contract, in miniature)."""
        import gc
        import weakref

        specs = [
            platform_spec(bench, policy=policy)
            for bench in ("Bm1", "Bm2")
            for policy in ("baseline", "heuristic3", "thermal")
        ]
        refs = []
        for _, result in iter_results(specs):
            refs.append(weakref.ref(result))
            del result
            gc.collect()
            alive = sum(1 for ref in refs if ref() is not None)
            assert alive <= 1

    def test_pool_streaming_matches_serial(self):
        specs = sweep_specs()
        serial = [r.evaluation for _, r in iter_results(specs)]
        pooled = [r.evaluation for _, r in iter_results(specs, workers=2)]
        assert serial == pooled
