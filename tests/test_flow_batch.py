"""run_many: ordering, dedup, the on-disk cache, and worker pools."""

import pytest

import repro.core.scheduler as scheduler_module
from repro.errors import FlowError
from repro.flow import clear_cache, platform_spec, run_many, spec_hash


def sweep_specs():
    return [
        platform_spec(bench, policy=policy)
        for bench in ("Bm1", "Bm2")
        for policy in ("heuristic3", "thermal")
    ]


class TestRunMany:
    def test_results_in_input_order(self):
        specs = sweep_specs()
        results = run_many(specs)
        assert [r.spec for r in results] == specs
        assert [r.evaluation.benchmark for r in results] == [
            "Bm1", "Bm1", "Bm2", "Bm2",
        ]

    def test_duplicate_specs_share_one_result(self):
        spec = platform_spec("Bm1", policy="heuristic3")
        results = run_many([spec, spec, spec])
        assert results[0] is results[1] is results[2]

    def test_rejects_non_spec_items(self):
        with pytest.raises(FlowError):
            run_many([platform_spec("Bm1"), "Bm2"])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(FlowError):
            run_many([platform_spec("Bm1")], workers=0)

    def test_pool_matches_serial(self):
        specs = sweep_specs()[:2]
        serial = run_many(specs)
        pooled = run_many(specs, workers=2)
        assert [r.evaluation for r in serial] == [r.evaluation for r in pooled]
        assert all(r.provenance["worker"] == "pool" for r in pooled)


class TestCache:
    def test_cache_roundtrip_and_hit_flags(self, tmp_path):
        specs = sweep_specs()[:2]
        first = run_many(specs, cache_dir=tmp_path)
        second = run_many(specs, cache_dir=tmp_path)
        assert all(not r.provenance["cache_hit"] for r in first)
        assert all(r.provenance["cache_hit"] for r in second)
        assert [r.evaluation for r in first] == [r.evaluation for r in second]

    def test_cache_hit_invokes_zero_scheduler_runs(self, tmp_path, monkeypatch):
        """Satellite acceptance: a warm cache never re-enters the ASP."""
        spec = platform_spec("Bm1", policy="thermal")
        run_many([spec], cache_dir=tmp_path)

        calls = {"n": 0}
        original = scheduler_module.ListScheduler.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(scheduler_module.ListScheduler, "run", counting_run)
        results = run_many([spec], cache_dir=tmp_path)
        assert calls["n"] == 0
        assert results[0].provenance["cache_hit"]
        assert results[0].evaluation.benchmark == "Bm1"

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = platform_spec("Bm1", policy="heuristic3")
        run_many([spec], cache_dir=tmp_path)
        [entry] = list(tmp_path.glob("*.flowresult.pkl"))
        entry.write_bytes(b"not a pickle")
        results = run_many([spec], cache_dir=tmp_path)
        assert not results[0].provenance["cache_hit"]

    def test_cache_keyed_by_spec_hash(self, tmp_path):
        spec = platform_spec("Bm1", policy="heuristic3")
        run_many([spec], cache_dir=tmp_path)
        assert (tmp_path / f"{spec_hash(spec)}.flowresult.pkl").is_file()

    def test_clear_cache(self, tmp_path):
        specs = sweep_specs()[:2]
        run_many(specs, cache_dir=tmp_path)
        assert clear_cache(tmp_path) == 2
        assert clear_cache(tmp_path) == 0
