"""Tests for the PowerTrace time series."""

import pytest

from repro.errors import ReproError
from repro.power.trace import PowerTrace


@pytest.fixture
def trace():
    # pe0: 5W in [0,10), 3W in [20,30); pe1: 4W in [5,25); span 30
    return PowerTrace(
        [
            (0.0, 10.0, "pe0", 5.0),
            (20.0, 30.0, "pe0", 3.0),
            (5.0, 25.0, "pe1", 4.0),
        ],
        idle_power={"pe0": 0.5, "pe1": 0.5},
    )


class TestConstruction:
    def test_pe_names(self, trace):
        assert trace.pe_names == ["pe0", "pe1"]

    def test_span_inferred(self, trace):
        assert trace.span == 30.0

    def test_explicit_span(self):
        trace = PowerTrace([(0.0, 5.0, "a", 1.0)], span=20.0)
        assert trace.span == 20.0

    def test_span_too_short_rejected(self):
        with pytest.raises(ReproError):
            PowerTrace([(0.0, 5.0, "a", 1.0)], span=4.0)

    def test_overlap_on_same_pe_rejected(self):
        with pytest.raises(ReproError):
            PowerTrace([(0.0, 10.0, "a", 1.0), (5.0, 15.0, "a", 1.0)])

    def test_overlap_on_different_pes_ok(self):
        PowerTrace([(0.0, 10.0, "a", 1.0), (5.0, 15.0, "b", 1.0)])

    def test_zero_length_interval_rejected(self):
        with pytest.raises(ReproError):
            PowerTrace([(5.0, 5.0, "a", 1.0)])

    def test_negative_power_rejected(self):
        with pytest.raises(ReproError):
            PowerTrace([(0.0, 1.0, "a", -2.0)])

    def test_empty_trace_ok(self):
        trace = PowerTrace([], idle_power={"a": 0.2}, span=10.0)
        assert trace.total_energy() == pytest.approx(2.0)


class TestQueries:
    def test_power_at(self, trace):
        assert trace.power_at(0.0) == {"pe0": 5.5, "pe1": 0.5}
        assert trace.power_at(7.0) == {"pe0": 5.5, "pe1": 4.5}
        assert trace.power_at(15.0) == {"pe0": 0.5, "pe1": 4.5}
        assert trace.power_at(29.0) == {"pe0": 3.5, "pe1": 0.5}

    def test_interval_closed_open(self, trace):
        # at exactly t=10 the first pe0 interval has ended
        assert trace.power_at(10.0)["pe0"] == pytest.approx(0.5)

    def test_power_at_outside_span_rejected(self, trace):
        with pytest.raises(ReproError):
            trace.power_at(31.0)
        with pytest.raises(ReproError):
            trace.power_at(-1.0)

    def test_breakpoints(self, trace):
        assert trace.breakpoints() == [0.0, 5.0, 10.0, 20.0, 25.0, 30.0]

    def test_segments_cover_span(self, trace):
        segments = trace.segments()
        assert sum(d for d, _ in segments) == pytest.approx(30.0)

    def test_segments_time_scale(self, trace):
        segments = trace.segments(time_scale=1e-3)
        assert sum(d for d, _ in segments) == pytest.approx(0.030)

    def test_segments_bad_scale(self, trace):
        with pytest.raises(ReproError):
            trace.segments(time_scale=0.0)


class TestEnergyAccounting:
    def test_total_energy(self, trace):
        # dynamic: 5*10 + 3*10 + 4*20 = 160; idle: 1.0 * 30 = 30
        assert trace.total_energy() == pytest.approx(190.0)

    def test_average_power(self, trace):
        assert trace.average_power() == pytest.approx(190.0 / 30.0)

    def test_pe_average_power(self, trace):
        assert trace.pe_average_power("pe0") == pytest.approx(80.0 / 30.0 + 0.5)
        with pytest.raises(ReproError):
            trace.pe_average_power("ghost")

    def test_average_powers_sum_matches_total(self, trace):
        total = sum(trace.average_powers().values())
        assert total == pytest.approx(trace.average_power())

    def test_peak_total_power(self, trace):
        # peak in [5,10): 5.5 + 4.5 = 10.0
        assert trace.peak_total_power() == pytest.approx(10.0)

    def test_energy_segments_consistency(self, trace):
        # integrating segments reproduces total energy
        total = sum(
            duration * sum(powers.values()) for duration, powers in trace.segments()
        )
        assert total == pytest.approx(trace.total_energy())
