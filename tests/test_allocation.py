"""Tests for co-synthesis allocation enumeration."""

import pytest

from repro.cosynth.allocation import (
    enumerate_allocations,
    feasible_allocations,
    make_architecture,
)
from repro.errors import CoSynthesisError
from repro.library.presets import default_catalogue, library_for_graph
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.graph import TaskGraph

CATALOGUE = default_catalogue()


class TestMakeArchitecture:
    def test_names_and_instances(self):
        arch = make_architecture([CATALOGUE[0], CATALOGUE[0], CATALOGUE[1]])
        assert len(arch) == 3
        assert arch.pe_names() == ["pe0", "pe1", "pe2"]

    def test_auto_name_describes_multiset(self):
        arch = make_architecture([CATALOGUE[0], CATALOGUE[0], CATALOGUE[1]])
        assert "x2" in arch.name
        assert CATALOGUE[1].name in arch.name

    def test_auto_name_order_independent(self):
        a = make_architecture([CATALOGUE[0], CATALOGUE[1]])
        b = make_architecture([CATALOGUE[1], CATALOGUE[0]])
        assert a.name == b.name

    def test_explicit_name(self):
        arch = make_architecture([CATALOGUE[0]], name="custom")
        assert arch.name == "custom"

    def test_empty_rejected(self):
        with pytest.raises(CoSynthesisError):
            make_architecture([])


class TestEnumeration:
    def test_count_matches_multiset_formula(self):
        # sum_k C(5+k-1, k) for k in 1..4 = 5 + 15 + 35 + 70 = 125
        allocations = list(enumerate_allocations(CATALOGUE, max_pes=4))
        assert len(allocations) == 125

    def test_min_pes_filter(self):
        allocations = list(enumerate_allocations(CATALOGUE, max_pes=2, min_pes=2))
        assert len(allocations) == 15
        assert all(len(a) == 2 for a in allocations)

    def test_deterministic_order(self):
        a = [tuple(t.name for t in x) for x in enumerate_allocations(CATALOGUE, 3)]
        b = [tuple(t.name for t in x) for x in enumerate_allocations(CATALOGUE, 3)]
        assert a == b

    def test_bad_bounds_rejected(self):
        with pytest.raises(CoSynthesisError):
            list(enumerate_allocations(CATALOGUE, max_pes=2, min_pes=3))
        with pytest.raises(CoSynthesisError):
            list(enumerate_allocations([], max_pes=2))


class TestFeasibility:
    def test_all_feasible_cover_all_tasks(self):
        graph = benchmark("Bm1")
        library = library_for_graph(graph)
        feasible = feasible_allocations(graph, library, CATALOGUE, max_pes=2)
        for arch in feasible:
            library.check_graph(graph, arch)  # must not raise

    def test_accelerator_only_is_infeasible(self):
        # the accelerator covers only a third of task types, so accel-only
        # allocations must be filtered out for any benchmark
        graph = benchmark("Bm1")
        library = library_for_graph(graph)
        feasible = feasible_allocations(graph, library, CATALOGUE, max_pes=2)
        names = [a.type_counts() for a in feasible]
        assert {"accel": 1} not in names
        assert {"accel": 2} not in names

    def test_no_feasible_allocation_raises(self):
        graph = TaskGraph("g", 100.0)
        graph.add("a", "nowhere-type")
        from repro.library.technology import TechnologyLibrary

        empty_lib = TechnologyLibrary()
        empty_lib.add_entry("other", CATALOGUE[0].name, 1.0, 1.0)
        with pytest.raises(CoSynthesisError):
            feasible_allocations(graph, empty_lib, CATALOGUE, max_pes=2)
