"""Tests for the grid-level thermal model."""

import numpy as np
import pytest

from repro.analysis.compare import spearman_rank_correlation
from repro.errors import ThermalError
from repro.floorplan.geometry import Floorplan
from repro.thermal.gridmodel import GridModel, cell_name
from repro.thermal.hotspot import HotSpotModel


@pytest.fixture
def grid(two_block_plan):
    return GridModel(two_block_plan, rows=4, cols=8)


class TestConstruction:
    def test_bad_resolution_rejected(self, two_block_plan):
        with pytest.raises(ThermalError):
            GridModel(two_block_plan, rows=0, cols=4)

    def test_empty_floorplan_rejected(self):
        with pytest.raises(ThermalError):
            GridModel(Floorplan())

    def test_node_count(self, grid):
        # 32 silicon cells + 32 spreader cells + sink
        assert len(grid.network) == 65


class TestPowerMapping:
    def test_cell_powers_conserve_total(self, grid):
        powers = grid.cell_powers({"left": 7.0, "right": 3.0})
        assert sum(powers.values()) == pytest.approx(10.0)

    def test_power_lands_under_the_block(self, grid):
        powers = grid.cell_powers({"left": 8.0})
        # left block covers columns 0..3 of the 8-column grid
        for name, value in powers.items():
            col = int(name.split("_")[2])
            assert col < 4
            assert value > 0.0

    def test_unknown_block_rejected(self, grid):
        with pytest.raises(Exception):
            grid.cell_powers({"ghost": 1.0})


class TestTemperatures:
    def test_loaded_side_hotter(self, grid):
        temps = grid.temperature_map({"left": 10.0})
        left_mean = temps[:, :4].mean()
        right_mean = temps[:, 4:].mean()
        assert left_mean > right_mean

    def test_map_shape_and_ambient_floor(self, grid):
        temps = grid.temperature_map({"left": 10.0})
        assert temps.shape == (4, 8)
        assert (temps >= grid.package.ambient_c - 1e-9).all()

    def test_block_temperatures_cover_blocks(self, grid):
        temps = grid.block_temperatures({"left": 10.0, "right": 2.0})
        assert set(temps) == {"left", "right"}
        assert temps["left"] > temps["right"]


class TestAgreementWithBlockModel:
    def test_rank_agreement_across_power_patterns(self, platform_plan):
        """Block-model block temperatures must rank like grid-model ones."""
        block_model = HotSpotModel(platform_plan)
        grid_model = GridModel(platform_plan, rows=4, cols=16)
        names = platform_plan.block_names()
        patterns = [
            {names[0]: 12.0},
            {names[1]: 12.0},
            {names[0]: 6.0, names[3]: 6.0},
            {n: 3.0 for n in names},
            {names[2]: 9.0, names[3]: 3.0},
        ]
        block_peaks = []
        grid_peaks = []
        for pattern in patterns:
            block_peaks.append(max(block_model.block_temperatures(pattern).values()))
            grid_peaks.append(max(grid_model.block_temperatures(pattern).values()))
        rho = spearman_rank_correlation(block_peaks, grid_peaks)
        assert rho >= 0.8

    def test_absolute_agreement_within_band(self, platform_plan):
        """Mean block temperatures of both models agree within a few °C."""
        block_model = HotSpotModel(platform_plan)
        grid_model = GridModel(platform_plan, rows=4, cols=16)
        powers = {n: 5.0 for n in platform_plan.block_names()}
        block_avg = block_model.average_temperature(powers)
        grid_temps = grid_model.block_temperatures(powers)
        grid_avg = sum(grid_temps.values()) / len(grid_temps)
        assert abs(block_avg - grid_avg) < 6.0
