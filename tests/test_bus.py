"""Tests for the shared-bus communication model and its scheduler hookup."""

import pytest

from repro.core.scheduler import ListScheduler, schedule_graph
from repro.errors import LibraryError
from repro.library.bus import Bus, CommunicationModel, shared_bus_comm, zero_cost_comm
from repro.library.pe import Architecture, PEType
from repro.library.presets import default_platform
from repro.library.technology import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


class TestBus:
    def test_transfer_time(self):
        bus = Bus("b", bandwidth=4.0, latency=1.0)
        assert bus.transfer_time(8.0) == pytest.approx(3.0)

    def test_zero_data_is_free(self):
        bus = Bus("b", bandwidth=4.0, latency=1.0)
        assert bus.transfer_time(0.0) == 0.0

    def test_transfer_energy(self):
        bus = Bus("b", bandwidth=4.0, latency=0.0, power=2.0)
        assert bus.transfer_energy(8.0) == pytest.approx(4.0)

    def test_negative_data_rejected(self):
        with pytest.raises(LibraryError):
            Bus("b", bandwidth=1.0).transfer_time(-1.0)

    @pytest.mark.parametrize("kw", [
        {"bandwidth": 0.0},
        {"bandwidth": 1.0, "latency": -1.0},
        {"bandwidth": 1.0, "power": -0.1},
    ])
    def test_invalid_bus_rejected(self, kw):
        with pytest.raises(LibraryError):
            Bus("b", **kw)


class TestCommunicationModel:
    def test_zero_cost_is_free(self):
        model = zero_cost_comm()
        assert model.is_free
        assert model.delay("a", "b", 100.0) == 0.0

    def test_same_pe_is_free(self):
        model = shared_bus_comm(bandwidth=2.0, latency=1.0)
        assert model.delay("pe0", "pe0", 100.0) == 0.0

    def test_cross_pe_charges_transfer(self):
        model = shared_bus_comm(bandwidth=2.0, latency=1.0)
        assert model.delay("pe0", "pe1", 8.0) == pytest.approx(5.0)


class TestSchedulerIntegration:
    @pytest.fixture
    def workload(self):
        graph = TaskGraph("comm", deadline=500.0)
        graph.add("producer", "t0")
        graph.add("consumer", "t0")
        graph.add_edge("producer", "consumer", data=40.0)
        library = TechnologyLibrary()
        library.add_entry("t0", "core", wcet=20.0, wcpc=5.0)
        arch = Architecture("duo")
        pe_type = PEType("core", 6.0, 6.0)
        arch.add_instance(pe_type)
        arch.add_instance(pe_type)
        return graph, arch, library

    def test_same_pe_chain_unaffected(self, workload):
        graph, arch, library = workload
        comm = shared_bus_comm(bandwidth=1.0, latency=5.0)
        schedule = schedule_graph(graph, arch, library, comm=comm)
        producer = schedule.assignment("producer")
        consumer = schedule.assignment("consumer")
        if producer.pe == consumer.pe:
            assert consumer.start == pytest.approx(producer.end)

    def test_scheduler_avoids_expensive_migration(self, workload):
        """With a huge transfer cost the consumer must follow its producer."""
        graph, arch, library = workload
        comm = shared_bus_comm(bandwidth=0.1, latency=50.0)  # 450-unit hop
        schedule = schedule_graph(graph, arch, library, comm=comm)
        assert (
            schedule.assignment("producer").pe
            == schedule.assignment("consumer").pe
        )

    def test_free_comm_matches_default(self, bm1, bm1_library):
        platform = default_platform()
        default = schedule_graph(bm1, platform, bm1_library)
        free = schedule_graph(bm1, platform, bm1_library, comm=zero_cost_comm())
        assert [(a.task, a.pe, a.start) for a in default.assignments()] == [
            (a.task, a.pe, a.start) for a in free.assignments()
        ]

    def test_bus_never_shortens_makespan(self, bm1, bm1_library):
        platform = default_platform()
        free = schedule_graph(bm1, platform, bm1_library)
        slow_bus = schedule_graph(
            bm1,
            platform,
            bm1_library,
            comm=shared_bus_comm(bandwidth=0.5, latency=2.0),
        )
        assert slow_bus.makespan >= free.makespan - 1e-9
        slow_bus.validate(bm1_library)

    def test_faster_bus_never_worse(self, bm1, bm1_library):
        platform = default_platform()
        slow = schedule_graph(
            bm1, platform, bm1_library,
            comm=shared_bus_comm(bandwidth=0.5, latency=4.0),
        )
        fast = schedule_graph(
            bm1, platform, bm1_library,
            comm=shared_bus_comm(bandwidth=50.0, latency=0.1),
        )
        assert fast.makespan <= slow.makespan + 1e-9

    def test_schedule_valid_under_comm(self, bm2, bm2_library):
        platform = default_platform()
        schedule = schedule_graph(
            bm2, platform, bm2_library, comm=shared_bus_comm()
        )
        schedule.validate(bm2_library)  # precedence holds a fortiori
