"""The analyzer registry and the five built-in analyzers."""

import csv
import io
import json

import pytest

from repro.errors import FlowError, ResultError
from repro.flow import platform_spec, run_many
from repro.results import (
    ANALYZERS,
    AnalysisReport,
    RunSet,
    analyze,
    analyzer_by_name,
    analyzer_names,
    register_analyzer,
)


@pytest.fixture(scope="module")
def runs():
    specs = [
        platform_spec(bench, policy=policy)
        for bench in ("Bm1", "Bm2")
        for policy in ("heuristic3", "thermal")
    ]
    return RunSet(
        records=tuple(r.as_record(suite="t") for r in run_many(specs))
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert {
            "summary", "compare", "pareto", "reliability", "deadline-misses",
        } <= set(analyzer_names())

    def test_hyphen_underscore_interchangeable(self):
        assert analyzer_by_name("deadline_misses") is analyzer_by_name(
            "deadline-misses"
        )

    def test_unknown_analyzer_raises(self):
        with pytest.raises(FlowError, match="unknown analyzer"):
            analyzer_by_name("nope")

    def test_user_analyzer_via_decorator(self, runs):
        name = "test-count-analyzer"
        if name not in ANALYZERS:

            @register_analyzer(name)
            def count(run_set, **options):
                return AnalysisReport(
                    name=name,
                    title="count",
                    rows=({"n": len(run_set)},),
                )

        report = analyze(name, runs)
        assert report.rows[0]["n"] == 4

    def test_analyzer_returning_wrong_type_rejected(self, runs):
        name = "test-bad-analyzer"
        if name not in ANALYZERS:
            register_analyzer(name, lambda run_set, **options: {"not": "a report"})
        with pytest.raises(ResultError, match="AnalysisReport"):
            analyze(name, runs)


class TestSummary:
    def test_groups_by_flow_and_policy(self, runs):
        report = analyze("summary", runs)
        assert {row["policy"] for row in report.rows} == {"heuristic3", "thermal"}
        assert all(row["runs"] == 2 for row in report.rows)
        assert all(row["benchmarks"] == 2 for row in report.rows)
        assert all(row["deadline_misses"] == 0 for row in report.rows)

    def test_unknown_options_rejected(self, runs):
        with pytest.raises(ResultError, match="unknown options"):
            analyze("summary", runs, typo=1)


class TestCompare:
    def test_thermal_improves_on_heuristic3(self, runs):
        report = analyze("compare", runs, baseline="heuristic3")
        [row] = report.rows
        assert row["policy"] == "thermal"
        assert row["benchmarks"] == 2
        assert row["avg_delta"] > 0  # thermal lowers max temperature
        assert row["fraction_improved"] == 1.0

    def test_metric_option_accepts_dotted_and_bare_names(self, runs):
        bare = analyze("compare", runs, metric="avg_temperature",
                       baseline="heuristic3")
        dotted = analyze("compare", runs, metric="metrics.avg_temperature",
                         baseline="heuristic3")
        assert bare.rows == dotted.rows

    def test_unknown_baseline_rejected(self, runs):
        with pytest.raises(ResultError, match="baseline"):
            analyze("compare", runs, baseline="nope")

    def test_empty_runset_rejected(self):
        with pytest.raises(ResultError, match="nothing to compare"):
            analyze("compare", RunSet())


class TestPareto:
    def test_front_is_nondominated_subset(self, runs):
        report = analyze("pareto", runs)
        assert 1 <= len(report.rows) <= len(runs)
        front = {(row["benchmark"], row["policy"]) for row in report.rows}
        # thermal dominates heuristic3 on (power, max_temp) for these runs
        assert all(policy == "thermal" for _, policy in front)

    def test_objectives_option_as_csv_string(self, runs):
        report = analyze("pareto", runs, objectives="makespan")
        best = min(r.get("metrics.makespan") for r in runs)
        assert any(row["makespan"] == round(best, 3) for row in report.rows)

    def test_no_objectives_rejected(self, runs):
        with pytest.raises(ResultError, match="objective"):
            analyze("pareto", runs, objectives=())


class TestReliability:
    def test_factors_below_one_when_hotter_than_reference(self, runs):
        report = analyze("reliability", runs, ref_temp_c=65.0)
        assert len(report.rows) == 4
        assert all(row["system_mttf_factor"] < 1.0 for row in report.rows)
        assert all(row["worst_pe"] for row in report.rows)


class TestDeadlineMisses:
    def test_no_misses_reports_note(self, runs):
        report = analyze("deadline-misses", runs)
        assert report.rows == ()
        assert "every run met its deadline" in report.notes[0]

    def test_null_metrics_do_not_crash_reports(self, runs):
        """json_safe nulls non-finite metrics; summary and
        deadline-misses must aggregate around the holes."""
        from dataclasses import replace

        forged = []
        for record in runs:
            metrics = dict(record.metrics)
            metrics["max_temperature"] = None
            metrics["makespan"] = None
            metrics["meets_deadline"] = False
            forged.append(replace(record, metrics=metrics))
        holes = RunSet(records=tuple(forged))
        summary = analyze("summary", holes)
        assert all(row["mean_max_temp"] is None for row in summary.rows)
        misses = analyze("deadline-misses", holes)
        assert all(row["overrun"] is None for row in misses.rows)
        assert misses.render("table")  # renders, no TypeError

    def test_miss_rows_carry_overrun(self, runs):
        from dataclasses import replace

        forged = []
        for record in runs:
            metrics = dict(record.metrics)
            metrics["meets_deadline"] = False
            metrics["makespan"] = metrics["deadline"] + 10.0
            forged.append(replace(record, metrics=metrics))
        report = analyze("deadline_misses", RunSet(records=tuple(forged)))
        assert len(report.rows) == 4
        assert all(row["overrun"] == 10.0 for row in report.rows)


class TestRender:
    def test_table_render_includes_title_and_notes(self, runs):
        report = analyze("deadline-misses", runs)
        text = report.render("table")
        assert "deadline misses" in text
        assert "every run met its deadline" in text

    def test_json_render_parses(self, runs):
        payload = json.loads(analyze("summary", runs).render("json"))
        assert payload["analyzer"] == "summary"
        assert len(payload["rows"]) == 2

    def test_csv_render_parses(self, runs):
        text = analyze("summary", runs).render("csv")
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "flow"
        assert len(rows) == 3

    def test_unknown_format_rejected(self, runs):
        with pytest.raises(ResultError, match="format"):
            analyze("summary", runs).render("xml")
