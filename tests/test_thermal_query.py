"""Property tests for the vectorized thermal query engine.

The engine's contract is *exactness by superposition*: every batched or
delta query must agree with the naive per-candidate steady-state solve to
floating-point noise (≤1e-9 °C) across random floorplans, power maps, and
grid resolutions.  These tests are what licenses the scheduler to answer
thermal candidates without a backsolve.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ThermalError
from repro.floorplan.geometry import Floorplan
from repro.power.model import PowerAccumulator
from repro.thermal.gridmodel import GridModel
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.query import ScheduledThermalQuery, ThermalQueryEngine

TOL = 1e-9


def random_floorplan(n_blocks: int, seed: int) -> Floorplan:
    """A row floorplan of *n_blocks* blocks with seeded random sizes."""
    rng = np.random.default_rng(seed)
    plan = Floorplan()
    x = 0.0
    for i in range(n_blocks):
        w = float(rng.uniform(2.0, 8.0))
        h = float(rng.uniform(3.0, 9.0))
        plan.place(f"b{i}", x, 0.0, w, h)
        x += w
    return plan


def random_powers(names, seed: int) -> dict:
    rng = np.random.default_rng(seed + 1000)
    return {name: float(rng.uniform(0.0, 20.0)) for name in names}


# ----------------------------------------------------------------------
# block model
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    n_blocks=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_engine_matches_naive_block_solver(n_blocks, seed):
    """Engine vector queries == per-candidate full solves, everywhere."""
    plan = random_floorplan(n_blocks, seed)
    model = HotSpotModel(plan)
    powers = random_powers(plan.block_names(), seed)
    naive = model.block_temperatures(powers)  # reference: full backsolve

    engine = model.query_engine()
    vector = engine.power_vector(powers)
    fast = engine.block_temperatures_vector(vector)
    for index, name in enumerate(engine.block_names):
        assert fast[index] == pytest.approx(naive[name], abs=TOL)
    assert engine.average_temperature_vector(vector) == pytest.approx(
        model.average_temperature(powers), abs=TOL
    )


@settings(max_examples=15, deadline=None)
@given(
    n_blocks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=8),
)
def test_batched_queries_match_per_candidate_loop(n_blocks, seed, k):
    plan = random_floorplan(n_blocks, seed)
    model = HotSpotModel(plan)
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.0, 15.0, size=(k, n_blocks))
    batched = model.block_temperatures_many(matrix)
    assert batched.shape == (k, n_blocks)
    for row in range(k):
        naive = model.block_temperatures(
            dict(zip(model.block_order, matrix[row]))
        )
        for col, name in enumerate(model.block_order):
            assert batched[row, col] == pytest.approx(naive[name], abs=TOL)


@settings(max_examples=20, deadline=None)
@given(
    n_blocks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    block=st.integers(min_value=0, max_value=5),
    delta=st.floats(min_value=0.0, max_value=30.0),
)
def test_delta_query_equals_recomputation(n_blocks, seed, block, delta):
    """avg(base + Δ·e_b) == base_avg + Δ·sens[b], vs the naive solve."""
    block %= n_blocks
    plan = random_floorplan(n_blocks, seed)
    model = HotSpotModel(plan)
    base = model.block_power_vector(random_powers(plan.block_names(), seed))
    engine = model.query_engine()

    bumped = base.copy()
    bumped[block] += delta
    naive = model.average_temperature(dict(zip(model.block_order, bumped)))

    base_avg = engine.average_temperature_vector(base)
    assert engine.average_temperature_delta(base_avg, block, delta) == (
        pytest.approx(naive, abs=TOL)
    )
    assert model.average_temperature_delta(base, block, delta) == (
        pytest.approx(naive, abs=TOL)
    )

    base_temps = engine.block_temperatures_vector(base)
    fast_temps = engine.block_temperatures_delta(base_temps, block, delta)
    naive_temps = model.block_temperatures(dict(zip(model.block_order, bumped)))
    for index, name in enumerate(engine.block_names):
        assert fast_temps[index] == pytest.approx(naive_temps[name], abs=TOL)


# ----------------------------------------------------------------------
# grid model
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    n_blocks=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=6),
)
def test_grid_engine_matches_naive_grid_queries(n_blocks, seed, rows, cols):
    """The coverage-folded grid engine equals the cell-level solve."""
    plan = random_floorplan(n_blocks, seed)
    grid = GridModel(plan, rows=rows, cols=cols)
    powers = random_powers(plan.block_names(), seed)
    naive = grid.block_temperatures(powers)

    engine = grid.query_engine()
    fast = engine.block_temperatures_vector(grid.block_power_vector(powers))
    for index, name in enumerate(engine.block_names):
        assert fast[index] == pytest.approx(naive[name], abs=TOL)

    matrix = np.array([grid.block_power_vector(powers)])
    batched = grid.block_temperatures_many(matrix)
    for index, name in enumerate(grid.block_order):
        assert batched[0, index] == pytest.approx(naive[name], abs=TOL)


def test_grid_cell_powers_still_conserve_total(two_block_plan):
    """The precomputed coverage matrix conserves power exactly."""
    grid = GridModel(two_block_plan, rows=5, cols=7)
    powers = grid.cell_powers({"left": 7.25, "right": 2.75})
    assert sum(powers.values()) == pytest.approx(10.0, abs=1e-12)


# ----------------------------------------------------------------------
# scheduled (accumulator-backed) queries
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    horizon=st.floats(min_value=10.0, max_value=2000.0),
    energy=st.floats(min_value=0.0, max_value=500.0),
)
def test_scheduled_query_matches_dict_path(seed, horizon, energy):
    """ScheduledThermalQuery == average_powers dict -> model query."""
    plan = random_floorplan(4, seed)
    model = HotSpotModel(plan)
    names = plan.block_names()
    rng = np.random.default_rng(seed)
    acc = PowerAccumulator(
        names, idle_power={n: float(rng.uniform(0.0, 0.5)) for n in names}
    )
    for _ in range(6):
        acc.record(
            names[int(rng.integers(len(names)))],
            float(rng.uniform(0.5, 10.0)),
            float(rng.uniform(1.0, 50.0)),
        )
    query = ScheduledThermalQuery(model.query_engine(), acc)
    candidate = names[int(rng.integers(len(names)))]
    averages = acc.average_powers(horizon, extra={candidate: energy})
    assert query.average_temperature(candidate, energy, horizon) == (
        pytest.approx(model.average_temperature(averages), abs=TOL)
    )
    assert query.peak_temperature(candidate, energy, horizon) == (
        pytest.approx(model.peak_temperature(averages), abs=TOL)
    )
    naive_temps = model.block_temperatures(averages)
    fast_temps = query.block_temperatures(candidate, energy, horizon)
    for index, name in enumerate(model.block_order):
        assert fast_temps[index] == pytest.approx(naive_temps[name], abs=TOL)


def test_scheduled_query_tracks_accumulator_mutation(platform_plan):
    """The cached base state refreshes when a task commits."""
    model = HotSpotModel(platform_plan)
    names = platform_plan.block_names()
    acc = PowerAccumulator(names)
    query = ScheduledThermalQuery(model.query_engine(), acc)
    before = query.average_temperature(names[0], 10.0, 100.0)
    acc.record(names[1], 8.0, 50.0)
    after = query.average_temperature(names[0], 10.0, 100.0)
    averages = acc.average_powers(100.0, extra={names[0]: 10.0})
    assert after == pytest.approx(model.average_temperature(averages), abs=TOL)
    assert after > before


def test_scheduled_query_rejects_many_to_one_mapping(platform_plan):
    model = HotSpotModel(platform_plan)
    names = platform_plan.block_names()
    acc = PowerAccumulator(["cpu0", "cpu1"])
    with pytest.raises(ThermalError):
        ScheduledThermalQuery(
            model.query_engine(), acc,
            pe_to_block={"cpu0": names[0], "cpu1": names[0]},
        )


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------
def test_engine_rejects_unknown_and_negative_power(platform_plan):
    engine = HotSpotModel(platform_plan).query_engine()
    with pytest.raises(ThermalError):
        engine.power_vector({"ghost": 1.0})
    with pytest.raises(ThermalError):
        engine.power_vector({engine.block_names[0]: -1.0})


def test_engine_rejects_bad_shapes(platform_plan):
    engine = HotSpotModel(platform_plan).query_engine()
    with pytest.raises(ThermalError):
        engine.block_temperatures_many(np.zeros((2, len(engine) + 1)))
    with pytest.raises(ThermalError):
        ThermalQueryEngine(["a", "b"], np.zeros((3, 3)), 45.0)
    with pytest.raises(ThermalError):
        ThermalQueryEngine([], np.zeros((0, 0)), 45.0)


def test_engine_counts_fast_queries(platform_plan):
    model = HotSpotModel(platform_plan)
    engine = model.query_engine()
    before = engine.fast_queries
    vector = engine.power_vector({model.block_order[0]: 5.0})
    engine.block_temperatures_vector(vector)
    engine.average_temperature_vector(vector)
    engine.average_temperature_delta(50.0, 0, 1.0)
    assert engine.fast_queries == before + 3


def test_engine_is_cached_and_counts_setup_solves(platform_plan):
    model = HotSpotModel(platform_plan)
    solves_before = model.query_stats["solver_solves"]
    engine = model.query_engine()
    assert model.query_engine() is engine
    stats = model.query_stats
    assert stats["engine_built"] == 1
    assert stats["engine_setup_solves"] == len(platform_plan)
    assert stats["solver_solves"] == solves_before + len(platform_plan)
