"""Tests for seeded RNG helpers."""

import random

import pytest

from repro.rng import DEFAULT_SEED, as_generator, as_random, spawn_seeds


def test_as_random_none_is_default_seed():
    a = as_random(None)
    b = as_random(DEFAULT_SEED)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_as_random_same_seed_same_stream():
    a, b = as_random(42), as_random(42)
    assert [a.randrange(1000) for _ in range(10)] == [
        b.randrange(1000) for _ in range(10)
    ]


def test_as_random_passthrough_instance():
    rng = random.Random(7)
    assert as_random(rng) is rng


def test_as_generator_deterministic():
    a, b = as_generator(42), as_generator(42)
    assert a.integers(0, 100, 10).tolist() == b.integers(0, 100, 10).tolist()


def test_as_generator_from_random_instance():
    # drawing through a Random instance must not crash and stays reproducible
    gen1 = as_generator(random.Random(5))
    gen2 = as_generator(random.Random(5))
    assert gen1.integers(0, 1000) == gen2.integers(0, 1000)


def test_spawn_seeds_deterministic_and_distinct():
    seeds_a = spawn_seeds(123, 8)
    seeds_b = spawn_seeds(123, 8)
    assert seeds_a == seeds_b
    assert len(set(seeds_a)) == 8


def test_spawn_seeds_prefix_stability():
    # adding streams must not perturb existing ones
    assert spawn_seeds(9, 3) == spawn_seeds(9, 5)[:3]


def test_spawn_seeds_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_seeds(1, -1)


def test_spawn_seeds_zero():
    assert spawn_seeds(1, 0) == []
