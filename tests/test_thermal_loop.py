"""Tests for HotSpot-in-the-loop scheduler construction and the CLI."""

import subprocess
import sys

import pytest

from repro.core.heuristics import BaselinePolicy, ThermalPolicy
from repro.core.thermal_loop import hotspot_for, thermal_scheduler
from repro.errors import ThermalError
from repro.floorplan.geometry import Floorplan
from repro.floorplan.platform import platform_floorplan
from repro.library.presets import default_platform


class TestHotspotFor:
    def test_default_floorplan_is_platform_layout(self, platform4):
        model = hotspot_for(platform4)
        reference = platform_floorplan(platform4)
        assert model.block_names == reference.block_names()

    def test_explicit_floorplan_used(self, platform4):
        plan = Floorplan()
        x = 0.0
        for pe in platform4:
            plan.place(pe.name, x, 0.0, 7.0, 7.0)  # custom oversized blocks
            x += 7.0
        model = hotspot_for(platform4, floorplan=plan)
        assert model.floorplan is plan

    def test_missing_pe_block_rejected(self, platform4):
        plan = Floorplan()
        plan.place("pe0", 0, 0, 6, 6)  # only one of four PEs
        with pytest.raises(ThermalError, match="lacks blocks"):
            hotspot_for(platform4, floorplan=plan)

    def test_custom_package(self, platform4):
        from repro.thermal.package import PackageConfig

        package = PackageConfig(convection_resistance=4.0)
        model = hotspot_for(platform4, package=package)
        hot = model.peak_temperature({"pe0": 10.0})
        default_hot = hotspot_for(platform4).peak_temperature({"pe0": 10.0})
        assert hot > default_hot  # worse cooling = hotter


class TestThermalScheduler:
    def test_runs_all_policy_kinds(self, bm1, bm1_library, platform4):
        scheduler = thermal_scheduler(bm1, platform4, bm1_library)
        for policy in (BaselinePolicy(), ThermalPolicy()):
            schedule = scheduler.run(policy)
            schedule.validate(bm1_library)

    def test_scheduler_reusable_across_policies(self, bm1, bm1_library, platform4):
        scheduler = thermal_scheduler(bm1, platform4, bm1_library)
        first = scheduler.run(ThermalPolicy())
        second = scheduler.run(ThermalPolicy())
        assert [(a.task, a.pe) for a in first.assignments()] == [
            (a.task, a.pe) for a in second.assignments()
        ]


class TestCLI:
    def test_module_entry_point_runs_one_experiment(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table3"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0
        assert "Table 3" in completed.stdout
        assert "thermal_aware" in completed.stdout

    def test_runner_rejects_unknown_experiment(self):
        from repro.errors import ExperimentError
        from repro.experiments.runner import run_experiment

        with pytest.raises(ExperimentError):
            run_experiment("nonexistent")

    def test_runner_main_returns_zero(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3"]) == 0
        captured = capsys.readouterr()
        assert "Table 3" in captured.out
