"""Tests for the experiment drivers (reduced configurations for speed).

The full-budget runs live in benchmarks/; here each driver is exercised on
a subset with a fast co-synthesis configuration, checking row structure and
the paper's qualitative shape.
"""

import pytest

from repro.cosynth.framework import CoSynthesisConfig
from repro.errors import ExperimentError
from repro.experiments.figure1 import format_figure1, run_figure1
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table1 import TABLE1_POLICIES, format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2, table2_reductions
from repro.experiments.table3 import format_table3, run_table3, table3_reductions
from repro.experiments.workloads import WORKLOAD_NAMES, all_workloads, workload
from repro.floorplan.genetic import GeneticConfig

FAST = CoSynthesisConfig(
    max_pes=3,
    screening_keep=2,
    refine_iterations=1,
    genetic_config=GeneticConfig(population_size=8, generations=4),
)


class TestWorkloads:
    def test_names_match_paper(self):
        assert WORKLOAD_NAMES == ["Bm1", "Bm2", "Bm3", "Bm4"]

    def test_workload_cached(self):
        assert workload("Bm1")[0] is workload("Bm1")[0]

    def test_all_workloads_cover_suite(self):
        loads = all_workloads()
        assert [g.name for g, _ in loads] == WORKLOAD_NAMES

    def test_library_covers_graph(self):
        graph, library = workload("Bm3")
        types = {t.task_type for t in graph}
        assert types <= set(library.task_types())


class TestTable1:
    def test_platform_rows_structure(self):
        rows = run_table1(
            benchmarks=["Bm1"], include_cosynthesis=False, config=FAST
        )
        assert len(rows) == len(TABLE1_POLICIES)
        for row in rows:
            assert row["architecture"] == "platform"
            assert row["meets_deadline"]
            assert row["max_temp"] >= row["avg_temp"]
            assert "paper_max_temp" in row

    def test_cosynthesis_rows_structure(self):
        rows = run_table1(
            benchmarks=["Bm1"],
            policies=["baseline", "heuristic3"],
            include_platform=False,
            config=FAST,
        )
        assert len(rows) == 2
        assert all(r["architecture"] == "co-synthesis" for r in rows)

    def test_format_contains_paper_columns(self):
        rows = run_table1(
            benchmarks=["Bm1"], include_cosynthesis=False, config=FAST
        )
        text = format_table1(rows)
        assert "Table 1" in text
        assert "paper_max_temp" in text


class TestTable2:
    def test_rows_and_reductions(self):
        rows = run_table2(benchmarks=["Bm1"], config=FAST)
        assert len(rows) == 2
        approaches = {r["approach"] for r in rows}
        assert approaches == {"power_aware", "thermal_aware"}
        reductions = table2_reductions(rows)
        assert set(reductions) == {"max_temp_reduction", "avg_temp_reduction"}

    def test_format_mentions_paper_targets(self):
        rows = run_table2(benchmarks=["Bm1"], config=FAST)
        text = format_table2(rows)
        assert "10.9" in text and "6.95" in text


class TestTable3:
    def test_thermal_shape_on_full_suite(self):
        """Table 3 runs the (fast) platform flow, so the full suite is
        affordable here — and the paper's shape must hold on it."""
        rows = run_table3()
        assert len(rows) == 8
        reductions = table3_reductions(rows)
        assert reductions["max_temp_reduction"] > 0.0
        assert reductions["avg_temp_reduction"] > 0.0
        for row in rows:
            assert row["meets_deadline"]

    def test_thermal_cooler_per_benchmark(self):
        rows = run_table3()
        by_benchmark = {}
        for row in rows:
            by_benchmark.setdefault(row["benchmark"], {})[row["approach"]] = row
        for name, pair in by_benchmark.items():
            assert (
                pair["thermal_aware"]["avg_temp"] <= pair["power_aware"]["avg_temp"]
            ), name

    def test_thermal_weight_override(self):
        rows = run_table3(benchmarks=["Bm1"], thermal_weight=0.0)
        thermal = [r for r in rows if r["approach"] == "thermal_aware"][0]
        power = [r for r in rows if r["approach"] == "power_aware"][0]
        # with zero weight the thermal policy degenerates: no reduction
        assert thermal["avg_temp"] >= power["avg_temp"] - 3.0

    def test_format_mentions_paper_targets(self):
        rows = run_table3(benchmarks=["Bm1"])
        text = format_table3(rows)
        assert "9.75" in text and "5.02" in text


class TestFigure1:
    def test_both_flows_traced(self):
        traces = run_figure1("Bm1", config=FAST)
        assert [t.flow for t in traces] == ["co-synthesis", "platform"]
        for trace in traces:
            assert trace.stages
            assert trace.num_pes >= 1
            assert trace.die_area_mm2 > 0.0
            assert trace.meets_requirement

    def test_platform_flow_uses_four_pes(self):
        traces = run_figure1("Bm1", config=FAST)
        platform = [t for t in traces if t.flow == "platform"][0]
        assert platform.num_pes == 4

    def test_format_lists_stages(self):
        traces = run_figure1("Bm1", config=FAST)
        text = format_figure1(traces)
        assert "meets requirement" in text
        assert "HotSpot" in text


class TestRunner:
    def test_registry_covers_all_artefacts(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "table3", "figure1"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("table9")

    def test_run_experiment_formats(self):
        text = run_experiment("table3", benchmarks=["Bm1"])
        assert "Table 3" in text
