"""Property-based tests for DVFS retiming and slack reclamation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import ListScheduler
from repro.extensions.dvfs import DEFAULT_LEVELS, DVFSLevel, reclaim_slack, retime_schedule
from repro.library.pe import Architecture
from repro.library.presets import default_catalogue, generate_technology_library
from repro.taskgraph.generator import GraphSpec, generate_task_graph

CATALOGUE = default_catalogue()


@st.composite
def scheduled_workloads(draw):
    """A valid nominal schedule over a random workload and platform size."""
    num_tasks = draw(st.integers(min_value=3, max_value=18))
    extra = draw(st.integers(min_value=0, max_value=max(0, num_tasks // 4)))
    spec = GraphSpec(
        "dvfs-prop",
        num_tasks,
        num_tasks - 1 + extra,
        deadline=float(num_tasks * 300),  # generous slack
        num_task_types=draw(st.integers(min_value=1, max_value=4)),
    )
    graph = generate_task_graph(spec, draw(st.integers(0, 2**31)))
    library = generate_technology_library(
        sorted({t.task_type for t in graph}),
        seed=draw(st.integers(0, 2**31)),
    )
    arch = Architecture("p")
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        arch.add_instance(CATALOGUE[0])
    schedule = ListScheduler(graph, arch, library).run()
    return schedule


@given(schedule=scheduled_workloads(), stretch=st.floats(1.0, 2.0))
@settings(max_examples=25, deadline=None)
def test_retiming_preserves_validity(schedule, stretch):
    durations = {a.task: a.duration * stretch for a in schedule}
    powers = {a.task: a.power for a in schedule}
    retimed = retime_schedule(schedule, durations, powers)
    retimed.validate()
    assert len(retimed) == len(schedule)


@given(schedule=scheduled_workloads(), stretch=st.floats(1.0, 2.0))
@settings(max_examples=25, deadline=None)
def test_retiming_preserves_mapping_and_order(schedule, stretch):
    durations = {a.task: a.duration * stretch for a in schedule}
    powers = {a.task: a.power for a in schedule}
    retimed = retime_schedule(schedule, durations, powers)
    for pe in schedule.architecture:
        before = [a.task for a in schedule.pe_assignments(pe.name)]
        after = [a.task for a in retimed.pe_assignments(pe.name)]
        assert before == after


@given(schedule=scheduled_workloads())
@settings(max_examples=20, deadline=None)
def test_reclaim_never_misses_deadline(schedule):
    result = reclaim_slack(schedule)
    assert result.schedule.makespan <= schedule.graph.deadline + 1e-9
    result.schedule.validate()


@given(schedule=scheduled_workloads())
@settings(max_examples=20, deadline=None)
def test_reclaim_energy_monotone(schedule):
    result = reclaim_slack(schedule)
    assert result.energy_after <= result.energy_before + 1e-9


@given(schedule=scheduled_workloads())
@settings(max_examples=15, deadline=None)
def test_deeper_ladder_never_worse(schedule):
    shallow = reclaim_slack(schedule, levels=DEFAULT_LEVELS[:2])
    deep = reclaim_slack(schedule, levels=DEFAULT_LEVELS)
    assert deep.energy_after <= shallow.energy_after + 1e-9


@given(schedule=scheduled_workloads(), stretch=st.floats(1.0, 2.0))
@settings(max_examples=25, deadline=None)
def test_retiming_iteration_order_is_hash_independent(schedule, stretch):
    # assignment insertion order feeds float summation order downstream
    # (total_energy -> the DSE energy objective -> byte-identical
    # archives), so it must be a function of the graph's task order, not
    # of set hash order.  The placement loop keeps worklist order: any
    # round's placements appear in graph.task_names() relative order.
    durations = {a.task: a.duration * stretch for a in schedule}
    powers = {a.task: a.power for a in schedule}
    retimed = retime_schedule(schedule, durations, powers)
    placed = [a.task for a in retimed]
    rank = {task: i for i, task in enumerate(schedule.graph.task_names())}
    finish = {}
    expected = []
    pending = list(schedule.graph.task_names())
    pe_of = {a.task: a.pe for a in schedule}
    order_on_pe = {
        pe.name: [a.task for a in schedule.pe_assignments(pe.name)]
        for pe in schedule.architecture
    }
    position = {
        task: i for tasks in order_on_pe.values()
        for i, task in enumerate(tasks)
    }
    while pending:
        remaining = []
        for task in pending:
            pe_pred_list = order_on_pe[pe_of[task]]
            pos = position[task]
            pe_pred = pe_pred_list[pos - 1] if pos > 0 else None
            if all(
                p in finish for p in schedule.graph.predecessors(task)
            ) and (pe_pred is None or pe_pred in finish):
                finish[task] = True
                expected.append(task)
            else:
                remaining.append(task)
        pending = remaining
    assert placed == expected
    assert sorted(placed, key=rank.get) == sorted(expected, key=rank.get)
