"""Tests for block-vs-grid thermal model cross-validation."""

import pytest

from repro.errors import ThermalError
from repro.thermal.validation import (
    ModelAgreement,
    compare_models,
    standard_power_patterns,
)


class TestPatterns:
    def test_pattern_count(self, platform_plan):
        patterns = standard_power_patterns(platform_plan, random_patterns=3)
        # uniform + one per block + 3 random
        assert len(patterns) == 1 + 4 + 3

    def test_total_power_conserved(self, platform_plan):
        for pattern in standard_power_patterns(platform_plan, total_power=20.0):
            assert sum(pattern.values()) == pytest.approx(20.0)

    def test_deterministic(self, platform_plan):
        a = standard_power_patterns(platform_plan, seed=3)
        b = standard_power_patterns(platform_plan, seed=3)
        assert a == b

    def test_bad_power_rejected(self, platform_plan):
        with pytest.raises(ThermalError):
            standard_power_patterns(platform_plan, total_power=0.0)


class TestAgreement:
    @pytest.fixture(scope="class")
    def agreement(self, request):
        from repro.floorplan.platform import platform_floorplan
        from repro.library.presets import default_platform

        plan = platform_floorplan(default_platform())
        return compare_models(plan, rows=4, cols=16)

    def test_rank_agreement_high(self, agreement):
        """The block model must order PE temperatures like the grid model."""
        assert agreement.rank_agreement >= 0.75

    def test_absolute_error_bounded(self, agreement):
        assert agreement.mean_abs_error_c < 5.0
        assert agreement.max_abs_error_c < 15.0

    def test_means_in_same_band(self, agreement):
        assert abs(agreement.mean_block_c - agreement.mean_grid_c) < 5.0

    def test_as_row(self, agreement):
        row = agreement.as_row()
        assert {"patterns", "mean_abs_err", "rank_agreement"} <= set(row)

    def test_empty_patterns_rejected(self, platform_plan):
        with pytest.raises(ThermalError):
            compare_models(platform_plan, patterns=[])
