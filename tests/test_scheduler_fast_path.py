"""Decision-identity regression tests for the verified thermal fast path.

The scheduler's vectorized thermal query path must produce schedules
*byte-identical* to the per-candidate-solve reference (``fast_thermal=
False``), which itself is bit-identical to the seed implementation — same
backsolve, same reduction order.  These tests pin that across the paper
benchmarks, generated-workload families, all thermal policy variants, and
the grid-model solver, plus the Bm1 schedule itself as a hard snapshot.
"""

import pytest

from repro.core.heuristics import ThermalPolicy
from repro.core.thermal_loop import thermal_scheduler
from repro.extensions.policies import HybridThermalPolicy, ThermalPeakPolicy
from repro.library.presets import default_platform, library_for_graph
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.generator import generate_family_graph

THERMAL_POLICIES = [ThermalPolicy, ThermalPeakPolicy, HybridThermalPolicy]


def assignments(schedule):
    return [
        (a.task, a.pe, a.start, a.end, a.power)
        for a in schedule.assignments()
    ]


def assert_decision_identical(scheduler, policy_cls):
    fast = scheduler.run(policy_cls())
    fast_stats = dict(scheduler.last_run_stats)
    reference = scheduler.run(policy_cls(), fast_thermal=False)
    assert assignments(fast) == assignments(reference)
    assert fast_stats["thermal_fast_path"] == 1
    assert fast_stats["thermal_fast_queries"] == (
        fast_stats["candidates_evaluated"]
    )
    # the whole point: only a small near-tie fraction is re-solved exactly
    assert fast_stats["thermal_exact_requeries"] < (
        fast_stats["candidates_evaluated"]
    )


#: Bm1 thermal-aware assignment sequence on the default platform — the
#: seed scheduler's decisions, frozen.  If this moves, the reproduction's
#: Table-3 numbers move with it.
BM1_THERMAL_ASSIGNMENTS = [
    ("t0", "pe0"), ("t2", "pe0"), ("t1", "pe0"), ("t3", "pe1"),
    ("t5", "pe2"), ("t4", "pe0"), ("t6", "pe3"), ("t7", "pe0"),
    ("t10", "pe2"), ("t8", "pe1"), ("t9", "pe0"), ("t12", "pe3"),
    ("t15", "pe2"), ("t13", "pe1"), ("t16", "pe0"), ("t14", "pe1"),
    ("t17", "pe3"), ("t11", "pe3"), ("t18", "pe0"),
]


def test_bm1_thermal_schedule_pinned_to_seed():
    graph = benchmark("Bm1")
    scheduler = thermal_scheduler(
        graph, default_platform(), library_for_graph(graph)
    )
    schedule = scheduler.run(ThermalPolicy())
    assert [
        (a.task, a.pe) for a in schedule.assignments()
    ] == BM1_THERMAL_ASSIGNMENTS


@pytest.mark.parametrize("bm", ["Bm1", "Bm2", "Bm3", "Bm4"])
@pytest.mark.parametrize("policy_cls", THERMAL_POLICIES)
def test_paper_benchmarks_decision_identical(bm, policy_cls):
    graph = benchmark(bm)
    scheduler = thermal_scheduler(
        graph, default_platform(), library_for_graph(graph)
    )
    assert_decision_identical(scheduler, policy_cls)


@pytest.mark.parametrize("family", ["layered", "chain", "wide", "forkjoin"])
@pytest.mark.parametrize("seed", [3, 11])
def test_generated_workloads_decision_identical(family, seed):
    graph = generate_family_graph(family, tasks=24, seed=seed)
    scheduler = thermal_scheduler(
        graph, default_platform(), library_for_graph(graph)
    )
    assert_decision_identical(scheduler, ThermalPolicy)


def test_gridmodel_solver_decision_identical(bm1, bm1_library):
    from repro.flow.registry import THERMAL_SOLVERS
    from repro.flow.spec import ThermalSpec
    from repro.core.scheduler import ListScheduler
    from repro.floorplan.platform import platform_floorplan
    from repro.thermal.package import default_package

    architecture = default_platform()
    adapter = THERMAL_SOLVERS.get("gridmodel")(
        platform_floorplan(architecture),
        default_package(),
        ThermalSpec(solver="gridmodel"),
    )
    scheduler = ListScheduler(bm1, architecture, bm1_library, thermal=adapter)
    assert_decision_identical(scheduler, ThermalPolicy)


def test_fast_path_reduces_solver_solves(bm1, bm1_library):
    """A full thermal ASP run needs far fewer backsolves than candidates."""
    scheduler = thermal_scheduler(bm1, default_platform(), bm1_library)
    model = scheduler.thermal
    before = model.query_stats["solver_solves"]
    scheduler.run(ThermalPolicy())
    solves = model.query_stats["solver_solves"] - before
    candidates = scheduler.last_run_stats["candidates_evaluated"]
    assert candidates > 200
    assert solves < candidates / 4


def test_fast_path_skipped_without_query_engine(bm1, bm1_library):
    """Models without a query engine keep the per-candidate slow path."""

    class OpaqueModel:
        def __init__(self, inner):
            self._inner = inner

        def average_temperature(self, powers):
            return self._inner.average_temperature(powers)

        def block_temperatures(self, powers):
            return self._inner.block_temperatures(powers)

        def peak_temperature(self, powers):
            return self._inner.peak_temperature(powers)

    from repro.core.scheduler import ListScheduler
    from repro.core.thermal_loop import hotspot_for

    architecture = default_platform()
    inner = hotspot_for(architecture)
    scheduler = ListScheduler(
        bm1, architecture, bm1_library, thermal=OpaqueModel(inner)
    )
    schedule = scheduler.run(ThermalPolicy())
    assert scheduler.last_run_stats["thermal_fast_path"] == 0
    assert scheduler.last_run_stats["thermal_fast_queries"] == 0

    reference = thermal_scheduler(bm1, architecture, bm1_library).run(
        ThermalPolicy()
    )
    assert assignments(schedule) == assignments(reference)


def test_many_to_one_mapping_falls_back(bm1, bm1_library):
    """A many-to-one PE->block mapping disables the fast path, not the run."""
    from repro.core.scheduler import ListScheduler
    from repro.floorplan.geometry import Floorplan
    from repro.thermal.hotspot import HotSpotModel

    architecture = default_platform()
    plan = Floorplan()
    plan.place("north", 0.0, 0.0, 8.0, 4.0)
    plan.place("south", 0.0, 4.0, 8.0, 4.0)
    model = HotSpotModel(plan)
    mapping = {"pe0": "north", "pe1": "north", "pe2": "south", "pe3": "south"}
    scheduler = ListScheduler(
        bm1, architecture, bm1_library, thermal=model, pe_to_block=mapping
    )
    schedule = scheduler.run(ThermalPolicy())
    assert scheduler.last_run_stats["thermal_fast_path"] == 0
    assert len(schedule) == len(bm1)
