"""Tests for shape-comparison statistics."""

import numpy as np
import pytest

from repro.analysis.compare import (
    average_delta,
    fraction_improved,
    ordering_agreement,
    spearman_rank_correlation,
)
from repro.errors import ExperimentError, FlowError


class TestAverageDelta:
    def test_positive_means_improvement(self):
        assert average_delta([100.0, 110.0], [90.0, 100.0]) == pytest.approx(10.0)

    def test_zero_for_identical(self):
        assert average_delta([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            average_delta([1.0], [1.0, 2.0])

    def test_empty_rejected_with_clear_flow_error(self):
        with pytest.raises(FlowError, match="empty metric vectors"):
            average_delta([], [])

    def test_empty_numpy_arrays_rejected(self):
        with pytest.raises(FlowError, match="empty"):
            average_delta(np.array([]), np.array([]))

    def test_numpy_array_inputs_accepted(self):
        # regression: `not array` raised ValueError on multi-element arrays
        value = average_delta(np.array([2.0, 4.0]), np.array([1.0, 2.0]))
        assert value == pytest.approx(1.5)


class TestFractionImproved:
    def test_all_improved(self):
        assert fraction_improved([2.0, 3.0], [1.0, 2.0]) == 1.0

    def test_half_improved(self):
        assert fraction_improved([2.0, 3.0], [1.0, 4.0]) == 0.5

    def test_ties_do_not_count(self):
        assert fraction_improved([2.0], [2.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(FlowError, match="empty"):
            fraction_improved([], [])

    def test_numpy_array_inputs_accepted(self):
        assert fraction_improved(np.array([2.0, 3.0]), np.array([1.0, 4.0])) == 0.5


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_handles_ties(self):
        rho = spearman_rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_all_equal_vectors(self):
        assert spearman_rank_correlation([5, 5, 5], [5, 5, 5]) == 1.0

    def test_one_constant_vector_is_zero_correlation(self):
        """All-tied on one side only: deterministic 0.0, not nan."""
        assert spearman_rank_correlation([5, 5, 5], [1, 2, 3]) == 0.0
        assert spearman_rank_correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_all_tied_is_deterministic_across_values(self):
        assert spearman_rank_correlation([7, 7], [0, 0]) == 1.0
        assert spearman_rank_correlation((3.5,) * 4, (3.5,) * 4) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(FlowError, match="empty"):
            spearman_rank_correlation([], [])

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        a = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0]
        b = [2.0, 7.0, 1.0, 8.0, 2.5, 1.0, 9.0]
        ours = spearman_rank_correlation(a, b)
        theirs = spearmanr(a, b).statistic
        assert ours == pytest.approx(theirs)

    def test_too_short_rejected(self):
        with pytest.raises(ExperimentError):
            spearman_rank_correlation([1.0], [1.0])


class TestOrderingAgreement:
    def test_full_agreement(self):
        paper = {"baseline": 118.0, "h3": 113.0}
        ours = {"baseline": 97.0, "h3": 92.0}
        assert ordering_agreement(paper, ours) == 1.0

    def test_full_disagreement(self):
        paper = {"a": 1.0, "b": 2.0}
        ours = {"a": 2.0, "b": 1.0}
        assert ordering_agreement(paper, ours) == 0.0

    def test_tie_counts_half(self):
        paper = {"a": 1.0, "b": 2.0}
        ours = {"a": 1.0, "b": 1.0}
        assert ordering_agreement(paper, ours) == 0.5

    def test_label_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            ordering_agreement({"a": 1.0, "b": 2.0}, {"a": 1.0, "c": 2.0})

    def test_single_label_rejected(self):
        with pytest.raises(ExperimentError):
            ordering_agreement({"a": 1.0}, {"a": 2.0})
