"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_hierarchy_subsystem_parents():
    assert issubclass(errors.CycleError, errors.TaskGraphError)
    assert issubclass(errors.UnknownTaskTypeError, errors.LibraryError)
    assert issubclass(errors.UnknownPETypeError, errors.LibraryError)
    assert issubclass(errors.SlicingError, errors.FloorplanError)
    assert issubclass(errors.SingularNetworkError, errors.ThermalError)
    assert issubclass(errors.DeadlineMissError, errors.SchedulingError)
    assert issubclass(errors.InfeasibleAllocationError, errors.SchedulingError)


def test_deadline_miss_error_carries_numbers():
    err = errors.DeadlineMissError(makespan=850.5, deadline=790.0)
    assert err.makespan == pytest.approx(850.5)
    assert err.deadline == pytest.approx(790.0)
    assert "850.5" in str(err)
    assert "790" in str(err)


def test_deadline_miss_error_custom_message():
    err = errors.DeadlineMissError(10.0, 5.0, message="custom text")
    assert str(err) == "custom text"


def test_repro_error_is_catchable_as_exception():
    with pytest.raises(Exception):
        raise errors.ThermalError("boom")
