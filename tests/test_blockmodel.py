"""Tests for the HotSpot-style block network builder."""

import pytest

from repro.errors import ThermalError
from repro.floorplan.geometry import Floorplan
from repro.thermal.blockmodel import (
    SINK_NODE,
    block_power_vector,
    build_block_network,
    spreader_node,
)
from repro.thermal.steady import SteadyStateSolver


def test_network_has_expected_nodes(two_block_plan):
    network = build_block_network(two_block_plan)
    names = set(network.node_names())
    assert {"left", "right", SINK_NODE} <= names
    assert spreader_node("left") in names
    assert spreader_node("right") in names
    assert len(network) == 5  # 2 blocks + 2 spreader cells + sink


def test_empty_floorplan_rejected():
    with pytest.raises(ThermalError):
        build_block_network(Floorplan())


def test_reserved_name_rejected():
    plan = Floorplan()
    plan.place(SINK_NODE, 0, 0, 1, 1)
    with pytest.raises(ThermalError):
        build_block_network(plan)


def test_overlapping_plan_rejected():
    from repro.errors import FloorplanError

    plan = Floorplan()
    plan.place("a", 0, 0, 4, 4)
    plan.place("b", 2, 2, 4, 4)
    # surfaces as the floorplan-validation error, not a thermal one
    with pytest.raises(FloorplanError):
        build_block_network(plan)


def test_power_vector_rejects_package_nodes(two_block_plan):
    network = build_block_network(two_block_plan)
    with pytest.raises(ThermalError):
        block_power_vector(network, {SINK_NODE: 1.0})
    with pytest.raises(ThermalError):
        block_power_vector(network, {spreader_node("left"): 1.0})


def test_loaded_block_is_hottest(two_block_plan):
    solver = SteadyStateSolver(build_block_network(two_block_plan))
    temps = solver.temperatures({"left": 10.0})
    assert temps["left"] > temps["right"]
    assert temps["right"] > temps[SINK_NODE]


def test_lateral_coupling_warms_neighbour(two_block_plan):
    solver = SteadyStateSolver(build_block_network(two_block_plan))
    temps = solver.temperatures({"left": 10.0})
    ambient = solver.network.ambient_c
    # the unloaded neighbour sits clearly above ambient thanks to coupling
    assert temps["right"] > ambient + 5.0


def test_separated_blocks_couple_only_through_package():
    plan = Floorplan()
    plan.place("a", 0, 0, 6, 6)
    plan.place("b", 20, 0, 6, 6)  # far apart: no silicon contact
    solver = SteadyStateSolver(build_block_network(plan))
    temps = solver.temperatures({"a": 10.0})
    # neighbour rises only to roughly sink temperature
    assert temps["b"] < temps["a"]
    assert temps["b"] - temps[SINK_NODE] < 3.0


def test_temperatures_in_calibrated_band(platform_plan):
    # platform drawing ~20 W total must land in the paper's regime
    solver = SteadyStateSolver(build_block_network(platform_plan))
    powers = {name: 5.0 for name in platform_plan.block_names()}
    temps = solver.temperatures(powers)
    hottest = max(temps[n] for n in platform_plan.block_names())
    assert 70.0 < hottest < 130.0


def test_position_asymmetry_on_row(platform_plan):
    # ends of a row must differ thermally from the middle (periphery paths);
    # this is what keeps Avg_Temp placement-sensitive on identical PEs
    solver = SteadyStateSolver(build_block_network(platform_plan))
    names = platform_plan.block_names()

    def avg_for(loaded):
        temps = solver.temperatures({loaded: 10.0})
        return sum(temps[n] for n in names) / len(names)

    assert avg_for(names[0]) != pytest.approx(avg_for(names[1]), abs=1e-6)


def test_more_power_is_monotonically_hotter(two_block_plan):
    solver = SteadyStateSolver(build_block_network(two_block_plan))
    t1 = solver.temperatures({"left": 5.0})
    t2 = solver.temperatures({"left": 10.0})
    for name in solver.network.node_names():
        assert t2[name] >= t1[name]
