"""Shared fixtures for the test suite.

Fixtures are deliberately small and deterministic; the expensive paper
benchmarks (Bm1–Bm4) are session-scoped so each is generated once.
"""

from __future__ import annotations

import pytest

from repro.floorplan.geometry import Block, Floorplan, Rect
from repro.floorplan.platform import platform_floorplan
from repro.library.pe import Architecture, PEType
from repro.library.presets import (
    default_catalogue,
    default_platform,
    library_for_graph,
)
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """A 4-task diamond: a -> (b, c) -> d, deadline 400."""
    graph = TaskGraph("diamond", deadline=400.0)
    graph.add("a", "type0")
    graph.add("b", "type1")
    graph.add("c", "type2")
    graph.add("d", "type0")
    graph.add_edge("a", "b", data=2.0)
    graph.add_edge("a", "c", data=3.0)
    graph.add_edge("b", "d", data=1.0)
    graph.add_edge("c", "d", data=1.0)
    return graph


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 5-task chain with one task type, deadline 600."""
    graph = TaskGraph("chain", deadline=600.0)
    previous = None
    for index in range(5):
        name = f"t{index}"
        graph.add(name, "type0")
        if previous is not None:
            graph.add_edge(previous, name)
        previous = name
    return graph


@pytest.fixture
def wide_graph() -> TaskGraph:
    """One source fanning out to 6 independent tasks, deadline 900."""
    graph = TaskGraph("wide", deadline=900.0)
    graph.add("src", "type0")
    for index in range(6):
        name = f"w{index}"
        graph.add(name, f"type{index % 3}")
        graph.add_edge("src", name)
    return graph


@pytest.fixture
def platform4() -> Architecture:
    """The paper's platform: four identical emb-risc PEs."""
    return default_platform()


@pytest.fixture
def small_catalogue():
    """The full preset catalogue."""
    return default_catalogue()


@pytest.fixture
def diamond_library(diamond_graph):
    """Library covering the diamond graph on the full catalogue."""
    return library_for_graph(diamond_graph)


@pytest.fixture
def chain_library(chain_graph):
    """Library covering the chain graph."""
    return library_for_graph(chain_graph)


@pytest.fixture
def wide_library(wide_graph):
    """Library covering the wide graph."""
    return library_for_graph(wide_graph)


@pytest.fixture
def platform_plan(platform4) -> Floorplan:
    """Canonical platform floorplan (row of four)."""
    return platform_floorplan(platform4)


@pytest.fixture
def two_block_plan() -> Floorplan:
    """Two abutting 6x6 blocks."""
    plan = Floorplan()
    plan.place("left", 0.0, 0.0, 6.0, 6.0)
    plan.place("right", 6.0, 0.0, 6.0, 6.0)
    return plan


@pytest.fixture(scope="session")
def bm1():
    """Benchmark Bm1 (19 tasks / 19 edges / deadline 790)."""
    return benchmark("Bm1")


@pytest.fixture(scope="session")
def bm1_library(bm1):
    """Technology library for Bm1."""
    return library_for_graph(bm1)


@pytest.fixture(scope="session")
def bm2():
    """Benchmark Bm2 (35 tasks / 40 edges / deadline 1500)."""
    return benchmark("Bm2")


@pytest.fixture(scope="session")
def bm2_library(bm2):
    """Technology library for Bm2."""
    return library_for_graph(bm2)
