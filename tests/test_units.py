"""Tests for unit helpers."""

import pytest

from repro import units


def test_mm_is_millimetre():
    assert units.MM == pytest.approx(1e-3)
    assert units.CM == pytest.approx(1e-2)
    assert units.UM == pytest.approx(1e-6)


def test_area_round_trip():
    assert units.mm2_to_m2(36.0) == pytest.approx(3.6e-5)
    assert units.m2_to_mm2(units.mm2_to_m2(123.4)) == pytest.approx(123.4)


def test_celsius_kelvin_round_trip():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(85.0)) == pytest.approx(85.0)


def test_ambient_is_embedded_enclosure_value():
    # the calibration constant the whole thermal package builds on
    assert 25.0 <= units.AMBIENT_C <= 60.0
