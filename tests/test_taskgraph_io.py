"""Tests for task-graph serialisation (dict, .tg text, files)."""

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.io import (
    dumps_tg,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads_tg,
    save_graph,
)


def graphs_equal(a, b):
    assert a.name == b.name
    assert a.deadline == b.deadline
    assert [(t.name, t.task_type, t.weight) for t in a] == [
        (t.name, t.task_type, t.weight) for t in b
    ]
    assert [(e.src, e.dst, e.data) for e in a.edges()] == [
        (e.src, e.dst, e.data) for e in b.edges()
    ]


class TestDictRoundTrip:
    def test_round_trip(self, diamond_graph):
        graphs_equal(diamond_graph, graph_from_dict(graph_to_dict(diamond_graph)))

    def test_round_trip_benchmark(self):
        graph = benchmark("Bm1")
        graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    def test_attrs_preserved(self, diamond_graph):
        payload = graph_to_dict(diamond_graph)
        payload["tasks"][0]["attrs"] = {"note": "hot"}
        restored = graph_from_dict(payload)
        assert restored.task("a").attrs == {"note": "hot"}

    def test_malformed_payload(self):
        with pytest.raises(TaskGraphError):
            graph_from_dict({"name": "x"})

    def test_defaults_filled(self):
        payload = {
            "name": "g",
            "deadline": 10.0,
            "tasks": [{"name": "a", "task_type": "t"}],
            "edges": [],
        }
        graph = graph_from_dict(payload)
        assert graph.task("a").weight == 1.0


class TestTextFormat:
    def test_round_trip(self, diamond_graph):
        graphs_equal(diamond_graph, loads_tg(dumps_tg(diamond_graph)))

    def test_round_trip_benchmark(self):
        graph = benchmark("Bm3")
        graphs_equal(graph, loads_tg(dumps_tg(graph)))

    def test_weight_serialised_when_nonunit(self, diamond_graph):
        graph = diamond_graph.copy()
        graph.add("heavy", "type0", weight=2.5)
        graph.add_edge("d", "heavy")
        text = dumps_tg(graph)
        assert "weight 2.5" in text
        assert loads_tg(text).task("heavy").weight == pytest.approx(2.5)

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# header comment\n"
            "graph g deadline 50\n"
            "\n"
            "task a type t0   # trailing comment\n"
            "task b type t1\n"
            "edge a b data 3\n"
        )
        graph = loads_tg(text)
        assert graph.num_tasks == 2
        assert graph.edge("a", "b").data == 3.0

    @pytest.mark.parametrize(
        "text",
        [
            "task a type t\n",  # task before graph
            "graph g deadline 10\nedge a b\n",  # edge with unknown tasks
            "graph g deadline 10\ngraph h deadline 5\n",  # two graphs
            "graph g x 10\n",  # missing deadline keyword
            "graph g deadline ten\n",  # non-numeric deadline
            "frobnicate\n",  # unknown directive
            "",  # no graph at all
        ],
    )
    def test_malformed_text_rejected(self, text):
        with pytest.raises(TaskGraphError):
            loads_tg(text)


class TestFiles:
    def test_tg_file_round_trip(self, diamond_graph, tmp_path):
        path = tmp_path / "g.tg"
        save_graph(diamond_graph, path)
        graphs_equal(diamond_graph, load_graph(path))

    def test_json_file_round_trip(self, diamond_graph, tmp_path):
        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        graphs_equal(diamond_graph, load_graph(path))
