"""Tests for the HotSpotModel facade."""

import pytest

from repro.errors import ThermalError
from repro.thermal.hotspot import HotSpotModel


@pytest.fixture
def model(platform_plan):
    return HotSpotModel(platform_plan)


class TestSteadyQueries:
    def test_block_names(self, model, platform_plan):
        assert model.block_names == platform_plan.block_names()

    def test_block_temperatures_cover_all_blocks(self, model):
        temps = model.block_temperatures({"pe0": 10.0})
        assert set(temps) == set(model.block_names)

    def test_unknown_block_rejected(self, model):
        with pytest.raises(ThermalError):
            model.block_temperatures({"ghost": 1.0})

    def test_peak_is_max_of_blocks(self, model):
        powers = {"pe0": 8.0, "pe2": 3.0}
        temps = model.block_temperatures(powers)
        assert model.peak_temperature(powers) == pytest.approx(max(temps.values()))

    def test_average_is_mean_of_blocks(self, model):
        powers = {"pe1": 6.0}
        temps = model.block_temperatures(powers)
        expected = sum(temps.values()) / len(temps)
        assert model.average_temperature(powers) == pytest.approx(expected)

    def test_query_count_tracks_solves(self, model):
        before = model.query_count
        model.block_temperatures({"pe0": 1.0})
        model.peak_temperature({"pe0": 1.0})
        assert model.query_count == before + 2

    def test_zero_power_gives_ambient(self, model):
        temps = model.block_temperatures({})
        for value in temps.values():
            assert value == pytest.approx(model.package.ambient_c)

    def test_balanced_cooler_than_concentrated(self, model):
        """Core paper premise: same total power, spread = cooler peak."""
        concentrated = model.peak_temperature({"pe1": 12.0})
        balanced = model.peak_temperature({pe: 3.0 for pe in model.block_names})
        assert balanced < concentrated


class TestTransientQueries:
    def test_transient_runs_on_schedule_like_segments(self, model):
        segments = [
            (5.0, {"pe0": 10.0}),
            (5.0, {"pe1": 10.0}),
            (5.0, {}),
        ]
        result = model.transient(segments, dt=1.0)
        assert result.times[-1] == pytest.approx(15.0)

    def test_transient_peak_below_steady_peak(self, model):
        """A short burst cannot exceed the steady state of the same power."""
        steady_peak = model.peak_temperature({"pe0": 10.0})
        burst_peak = model.transient_peak([(1.0, {"pe0": 10.0})], dt=0.1)
        assert burst_peak <= steady_peak + 1e-6

    def test_transient_rejects_unknown_block(self, model):
        with pytest.raises(ThermalError):
            model.transient([(1.0, {"ghost": 1.0})], dt=0.1)

    def test_long_transient_approaches_steady(self, model):
        powers = {"pe0": 6.0, "pe3": 6.0}
        steady = model.block_temperatures(powers)
        result = model.transient([(3000.0, powers)], dt=10.0)
        final = result.final()
        for name in model.block_names:
            assert final[name] == pytest.approx(steady[name], abs=0.5)
