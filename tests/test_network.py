"""Tests for the generic thermal RC network."""

import numpy as np
import pytest

from repro.errors import SingularNetworkError, ThermalError
from repro.thermal.network import ThermalNetwork


@pytest.fixture
def two_node():
    network = ThermalNetwork(ambient_c=45.0)
    network.add_node("a", capacitance=1.0, ambient_conductance=0.5)
    network.add_node("b", capacitance=2.0)
    network.connect("a", "b", 1.0)
    return network


class TestConstruction:
    def test_duplicate_node_rejected(self, two_node):
        with pytest.raises(ThermalError):
            two_node.add_node("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ThermalError):
            ThermalNetwork(45.0).add_node("")

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ThermalError):
            ThermalNetwork(45.0).add_node("a", capacitance=-1.0)

    def test_self_connection_rejected(self, two_node):
        with pytest.raises(ThermalError):
            two_node.connect("a", "a", 1.0)

    def test_nonpositive_conductance_rejected(self, two_node):
        with pytest.raises(ThermalError):
            two_node.connect("a", "b", 0.0)

    def test_unknown_node_rejected(self, two_node):
        with pytest.raises(ThermalError):
            two_node.connect("a", "ghost", 1.0)
        with pytest.raises(ThermalError):
            two_node.index("ghost")

    def test_parallel_connections_accumulate(self):
        network = ThermalNetwork(45.0)
        network.add_node("a", ambient_conductance=1.0)
        network.add_node("b")
        network.connect("a", "b", 1.0)
        network.connect("a", "b", 2.0)
        matrix = network.conductance_matrix()
        assert matrix[0, 1] == pytest.approx(-3.0)

    def test_add_ambient_path(self, two_node):
        two_node.add_ambient_path("b", 2.0)
        matrix = two_node.conductance_matrix()
        assert matrix[1, 1] == pytest.approx(1.0 + 2.0)

    def test_len_and_contains(self, two_node):
        assert len(two_node) == 2
        assert "a" in two_node and "zzz" not in two_node


class TestMatrices:
    def test_conductance_matrix_symmetric(self, two_node):
        matrix = two_node.conductance_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_conductance_matrix_values(self, two_node):
        matrix = two_node.conductance_matrix()
        expected = np.array([[1.5, -1.0], [-1.0, 1.0]])
        assert np.allclose(matrix, expected)

    def test_matrix_cached_until_mutation(self, two_node):
        m1 = two_node.conductance_matrix()
        m2 = two_node.conductance_matrix()
        assert m1 is m2
        two_node.connect("a", "b", 0.5)
        assert two_node.conductance_matrix() is not m1

    def test_capacitance_vector(self, two_node):
        assert two_node.capacitance_vector().tolist() == [1.0, 2.0]

    def test_power_vector(self, two_node):
        vector = two_node.power_vector({"b": 3.0})
        assert vector.tolist() == [0.0, 3.0]

    def test_power_vector_unknown_node(self, two_node):
        with pytest.raises(ThermalError):
            two_node.power_vector({"ghost": 1.0})

    def test_power_vector_negative_rejected(self, two_node):
        with pytest.raises(ThermalError):
            two_node.power_vector({"a": -1.0})

    def test_check_grounded(self, two_node):
        two_node.check_grounded()
        floating = ThermalNetwork(45.0)
        floating.add_node("x")
        with pytest.raises(SingularNetworkError):
            floating.check_grounded()
