"""Tests for Pareto exploration of the allocation space."""

import pytest

from repro.cosynth.pareto import DesignPoint, explore_allocations, pareto_front
from repro.errors import CoSynthesisError
from repro.floorplan.genetic import GeneticConfig

FAST_GA = GeneticConfig(population_size=6, generations=3)


def make_point(power, temp, cost=1.0, feasible=True, name="a"):
    return DesignPoint(
        architecture_name=name,
        num_pes=2,
        monetary_cost=cost,
        total_power=power,
        max_temperature=temp,
        avg_temperature=temp - 3.0,
        makespan=100.0,
        meets_deadline=feasible,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert make_point(10.0, 90.0).dominates(make_point(12.0, 95.0))

    def test_equal_does_not_dominate(self):
        a, b = make_point(10.0, 90.0), make_point(10.0, 90.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        cool_hungry = make_point(15.0, 80.0)
        hot_frugal = make_point(8.0, 100.0)
        assert not cool_hungry.dominates(hot_frugal)
        assert not hot_frugal.dominates(cool_hungry)

    def test_cost_participates(self):
        cheap = make_point(10.0, 90.0, cost=1.0)
        pricey = make_point(10.0, 90.0, cost=2.0)
        assert cheap.dominates(pricey)


class TestParetoFront:
    def test_front_removes_dominated(self):
        points = [
            make_point(10.0, 90.0, name="good"),
            make_point(12.0, 95.0, name="dominated"),
            make_point(8.0, 100.0, name="frugal"),
        ]
        front = pareto_front(points)
        names = [p.architecture_name for p in front]
        assert "dominated" not in names
        assert set(names) == {"good", "frugal"}

    def test_front_sorted_by_power(self):
        points = [make_point(12.0, 80.0), make_point(8.0, 100.0)]
        front = pareto_front(points)
        powers = [p.total_power for p in front]
        assert powers == sorted(powers)

    def test_single_point_front(self):
        only = [make_point(10.0, 90.0)]
        assert pareto_front(only) == only


class TestExploration:
    def test_points_cover_feasible_space(self, bm1, bm1_library):
        points = explore_allocations(
            bm1, bm1_library, max_pes=2, genetic_config=FAST_GA
        )
        assert len(points) >= 3
        assert all(p.meets_deadline for p in points)

    def test_front_is_subset(self, bm1, bm1_library):
        points = explore_allocations(
            bm1, bm1_library, max_pes=2, genetic_config=FAST_GA
        )
        front = pareto_front(points)
        assert 1 <= len(front) <= len(points)
        point_names = {p.architecture_name for p in points}
        assert {p.architecture_name for p in front} <= point_names

    def test_front_contains_power_minimum(self, bm1, bm1_library):
        points = explore_allocations(
            bm1, bm1_library, max_pes=2, genetic_config=FAST_GA
        )
        front = pareto_front(points)
        min_power = min(p.total_power for p in points)
        assert any(p.total_power == pytest.approx(min_power) for p in front)

    def test_infeasible_workload_raises(self, bm1, bm1_library):
        tight = bm1.with_deadline(1.0)
        with pytest.raises(CoSynthesisError):
            explore_allocations(
                tight, bm1_library, max_pes=1, genetic_config=FAST_GA
            )

    def test_single_pe_allocations_infeasible_but_reportable(self, bm1, bm1_library):
        # one PE cannot meet Bm1's deadline; with feasible_only=False the
        # points are still returned for reporting
        points = explore_allocations(
            bm1, bm1_library, max_pes=1, genetic_config=FAST_GA,
            feasible_only=False,
        )
        assert points
        assert not any(p.meets_deadline for p in points)

    def test_as_row_shape(self, bm1, bm1_library):
        points = explore_allocations(
            bm1, bm1_library, max_pes=2, genetic_config=FAST_GA
        )
        row = points[0].as_row()
        assert {"architecture", "total_pow", "max_temp", "meets_deadline"} <= set(row)


class TestVectorDominance:
    """The deterministic vector core the DSE Pareto archive rides on."""

    def test_dominates_strict_and_ties(self):
        from repro.cosynth.pareto import dominates_vector

        assert dominates_vector((1.0, 2.0), (2.0, 3.0))
        assert not dominates_vector((2.0, 3.0), (1.0, 2.0))
        # equal-within-tolerance vectors are mutually non-dominating
        assert not dominates_vector((1.0, 2.0), (1.0 + 1e-14, 2.0))
        assert not dominates_vector((1.0 + 1e-14, 2.0), (1.0, 2.0))

    def test_mismatched_lengths_rejected(self):
        from repro.cosynth.pareto import dominates_vector, pareto_indices

        with pytest.raises(CoSynthesisError, match="mismatched"):
            dominates_vector((1.0,), (1.0, 2.0))
        with pytest.raises(CoSynthesisError, match="mismatched"):
            pareto_indices([(1.0, 2.0), (1.0,)])

    def test_indices_in_insertion_order(self):
        from repro.cosynth.pareto import pareto_indices

        vectors = [(3.0, 1.0), (5.0, 5.0), (1.0, 3.0), (2.0, 2.0)]
        assert pareto_indices(vectors) == [0, 2, 3]

    def test_exact_duplicates_keep_first(self):
        from repro.cosynth.pareto import pareto_indices

        vectors = [(2.0, 2.0), (1.0, 3.0), (2.0, 2.0), (2.0, 2.0)]
        assert pareto_indices(vectors) == [0, 1]

    def test_dominance_ties_all_survive(self):
        from repro.cosynth.pareto import pareto_indices

        base = (1.0, 1.0)
        tied = (1.0 + 1e-14, 1.0 - 1e-14)  # distinct, equal within tolerance
        assert pareto_indices([base, tied, (2.0, 2.0)]) == [0, 1]

    def test_empty_input(self):
        from repro.cosynth.pareto import pareto_indices

        assert pareto_indices([]) == []

    def test_duplicate_design_points_keep_first(self):
        twin_a = make_point(10.0, 90.0, name="first")
        twin_b = make_point(10.0, 90.0, name="second")
        front = pareto_front([twin_a, twin_b])
        assert [p.architecture_name for p in front] == ["first"]
