"""Tests for the extended thermal DC policies."""

import pytest

from repro.core.heuristics import ThermalPolicy
from repro.core.thermal_loop import thermal_scheduler
from repro.errors import SchedulingError
from repro.extensions.policies import (
    EXTENDED_POLICY_NAMES,
    HybridThermalPolicy,
    ThermalPeakPolicy,
    extended_policy_by_name,
)
from repro.library.presets import default_platform
from repro.power.model import PowerAccumulator
from repro.thermal.hotspot import HotSpotModel


def make_ctx(plan, pe_name, energy=50.0, horizon=10.0):
    from repro.core.heuristics import DCContext

    model = HotSpotModel(plan)
    accumulator = PowerAccumulator(plan.block_names())
    return DCContext(
        task_name="t",
        pe_name=pe_name,
        wcet=10.0,
        power=energy / 10.0,
        energy=energy,
        ready_time=0.0,
        start=0.0,
        finish=10.0,
        accumulator=accumulator,
        horizon=horizon,
        thermal=model,
        pe_to_block=None,
    ), model


class TestThermalPeakPolicy:
    def test_penalty_is_weighted_peak(self, platform_plan):
        ctx, model = make_ctx(platform_plan, "pe0")
        policy = ThermalPeakPolicy(weight=1.0)
        expected = model.peak_temperature({"pe0": 5.0})
        assert policy.penalty(ctx) == pytest.approx(expected)

    def test_requires_thermal_model(self, platform_plan):
        ctx, _ = make_ctx(platform_plan, "pe0")
        ctx.thermal = None
        with pytest.raises(SchedulingError):
            ThermalPeakPolicy().penalty(ctx)

    def test_peak_sees_concentration_where_average_cannot(self, platform_plan):
        """The motivating property: loading an already-hot PE raises the
        peak penalty much more than the average penalty."""
        model = HotSpotModel(platform_plan)
        accumulator = PowerAccumulator(platform_plan.block_names())
        accumulator.record("pe1", power=8.0, duration=10.0)  # pe1 is hot

        def ctx_for(pe):
            from repro.core.heuristics import DCContext

            return DCContext(
                task_name="t",
                pe_name=pe,
                wcet=10.0,
                power=5.0,
                energy=50.0,
                ready_time=0.0,
                start=0.0,
                finish=10.0,
                accumulator=accumulator,
                horizon=10.0,
                thermal=model,
                pe_to_block=None,
            )

        peak = ThermalPeakPolicy(weight=1.0)
        hot_choice = peak.penalty(ctx_for("pe1"))
        cool_choice = peak.penalty(ctx_for("pe3"))
        assert hot_choice > cool_choice + 1.0  # clearly separated


class TestHybridPolicy:
    def test_zero_fraction_matches_average_policy(self, platform_plan):
        ctx, _ = make_ctx(platform_plan, "pe0")
        hybrid = HybridThermalPolicy(weight=1.0, peak_fraction=0.0)
        average = ThermalPolicy(weight=1.0)
        assert hybrid.penalty(ctx) == pytest.approx(average.penalty(ctx))

    def test_unit_fraction_matches_peak_policy(self, platform_plan):
        ctx, _ = make_ctx(platform_plan, "pe0")
        hybrid = HybridThermalPolicy(weight=1.0, peak_fraction=1.0)
        peak = ThermalPeakPolicy(weight=1.0)
        assert hybrid.penalty(ctx) == pytest.approx(peak.penalty(ctx))

    def test_fraction_bounds_enforced(self):
        with pytest.raises(SchedulingError):
            HybridThermalPolicy(peak_fraction=1.5)
        with pytest.raises(SchedulingError):
            HybridThermalPolicy(peak_fraction=-0.1)


class TestRegistryAndScheduling:
    def test_registry_names(self):
        assert set(EXTENDED_POLICY_NAMES) == {
            "thermal",
            "thermal-peak",
            "thermal-hybrid",
        }

    def test_lookup_with_weight(self):
        policy = extended_policy_by_name("thermal-peak", weight=3.0)
        assert policy.weight == 3.0

    def test_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            extended_policy_by_name("thermal-voodoo")

    def test_all_variants_produce_valid_schedules(self, bm1, bm1_library):
        platform = default_platform()
        scheduler = thermal_scheduler(bm1, platform, bm1_library)
        for name in EXTENDED_POLICY_NAMES:
            schedule = scheduler.run(extended_policy_by_name(name))
            schedule.validate(bm1_library)
            assert schedule.meets_deadline, name

    def test_peak_variant_no_worse_on_peak_metric(self, bm1, bm1_library):
        from repro.analysis.metrics import evaluate_schedule
        from repro.floorplan.platform import platform_floorplan

        platform = default_platform()
        plan = platform_floorplan(platform)
        scheduler = thermal_scheduler(bm1, platform, bm1_library, floorplan=plan)
        avg_pol = scheduler.run(ThermalPolicy())
        peak_pol = scheduler.run(ThermalPeakPolicy())
        eval_avg = evaluate_schedule(avg_pol, floorplan=plan)
        eval_peak = evaluate_schedule(peak_pol, floorplan=plan)
        assert (
            eval_peak.max_temperature <= eval_avg.max_temperature + 1.5
        )
