"""Tests for conditional task graphs and their scheduling."""

import pytest

from repro.core.conditional import schedule_conditional
from repro.core.heuristics import TaskEnergyPolicy, ThermalPolicy
from repro.errors import SchedulingError, TaskGraphError
from repro.floorplan.platform import platform_floorplan
from repro.library.presets import default_platform, generate_technology_library
from repro.taskgraph.conditional import Condition, ConditionalTaskGraph


def build_branchy_ctg():
    """src -> branch --[m=hi]--> heavy -> join
                     \\-[m=lo]--> light -> join ; src -> always -> join"""
    ctg = ConditionalTaskGraph("branchy", deadline=600.0)
    ctg.add("src", "type0")
    ctg.add("branch", "type1")
    ctg.add("heavy", "type2", weight=2.0)
    ctg.add("light", "type2", weight=0.5)
    ctg.add("always", "type1")
    ctg.add("join", "type0")
    ctg.add_edge("src", "branch")
    ctg.add_edge("branch", "heavy", condition=Condition("m", "hi"))
    ctg.add_edge("branch", "light", condition=Condition("m", "lo"))
    ctg.add_edge("heavy", "join", data=2.0)
    ctg.add_edge("light", "join", data=2.0)
    ctg.add_edge("src", "always")
    ctg.add_edge("always", "join")
    ctg.declare_guard("m", {"hi": 0.3, "lo": 0.7})
    return ctg


def library_for(ctg):
    types = sorted({t.task_type for t in ctg.tasks()})
    return generate_technology_library(types, seed=42)


class TestStructure:
    def test_validate_passes(self):
        build_branchy_ctg().validate()

    def test_undeclared_guard_rejected(self):
        ctg = ConditionalTaskGraph("g", 100.0)
        ctg.add("a", "t")
        ctg.add("b", "t")
        ctg.add_edge("a", "b", condition=Condition("x", "yes"))
        with pytest.raises(TaskGraphError, match="undeclared"):
            ctg.validate()

    def test_unknown_outcome_rejected(self):
        ctg = ConditionalTaskGraph("g", 100.0)
        ctg.add("a", "t")
        ctg.add("b", "t")
        ctg.add_edge("a", "b", condition=Condition("x", "maybe"))
        ctg.declare_guard("x", {"yes": 0.5, "no": 0.5})
        with pytest.raises(TaskGraphError, match="maybe"):
            ctg.validate()

    def test_guard_split_across_tasks_rejected(self):
        ctg = ConditionalTaskGraph("g", 100.0)
        for name in "abcd":
            ctg.add(name, "t")
        ctg.add_edge("a", "c", condition=Condition("x", "yes"))
        ctg.add_edge("b", "d", condition=Condition("x", "no"))
        ctg.declare_guard("x", {"yes": 0.5, "no": 0.5})
        with pytest.raises(TaskGraphError, match="one branch task"):
            ctg.validate()

    def test_probabilities_must_sum_to_one(self):
        ctg = ConditionalTaskGraph("g", 100.0)
        with pytest.raises(TaskGraphError):
            ctg.declare_guard("x", {"yes": 0.5, "no": 0.6})

    def test_duplicate_guard_rejected(self):
        ctg = ConditionalTaskGraph("g", 100.0)
        ctg.declare_guard("x", {"yes": 1.0})
        with pytest.raises(TaskGraphError):
            ctg.declare_guard("x", {"no": 1.0})


class TestScenarios:
    def test_two_scenarios_with_probabilities(self):
        scenarios = build_branchy_ctg().scenarios()
        assert len(scenarios) == 2
        assert sum(s.probability for s in scenarios) == pytest.approx(1.0)
        labels = {s.label for s in scenarios}
        assert labels == {"m=hi", "m=lo"}

    def test_scenario_subgraphs_drop_untaken_branch(self):
        scenarios = {s.label: s for s in build_branchy_ctg().scenarios()}
        hi = scenarios["m=hi"].graph
        lo = scenarios["m=lo"].graph
        assert "heavy" in hi and "light" not in hi
        assert "light" in lo and "heavy" not in lo
        # the unconditional spine survives in both
        for graph in (hi, lo):
            for name in ("src", "branch", "always", "join"):
                assert name in graph

    def test_no_guards_single_scenario(self):
        ctg = ConditionalTaskGraph("plain", 100.0)
        ctg.add("a", "t")
        ctg.add("b", "t")
        ctg.add_edge("a", "b")
        scenarios = ctg.scenarios()
        assert len(scenarios) == 1
        assert scenarios[0].probability == 1.0
        assert scenarios[0].label == "(unconditional)"

    def test_two_guards_four_scenarios(self):
        ctg = ConditionalTaskGraph("g2", 400.0)
        for name in ("s", "b1", "b2", "x", "y", "p", "q", "j"):
            ctg.add(name, "t")
        ctg.add_edge("s", "b1")
        ctg.add_edge("s", "b2")
        ctg.add_edge("b1", "x", condition=Condition("g1", "a"))
        ctg.add_edge("b1", "y", condition=Condition("g1", "b"))
        ctg.add_edge("b2", "p", condition=Condition("g2", "a"))
        ctg.add_edge("b2", "q", condition=Condition("g2", "b"))
        for mid in ("x", "y", "p", "q"):
            ctg.add_edge(mid, "j")
        ctg.declare_guard("g1", {"a": 0.5, "b": 0.5})
        ctg.declare_guard("g2", {"a": 0.25, "b": 0.75})
        scenarios = ctg.scenarios()
        assert len(scenarios) == 4
        probabilities = sorted(s.probability for s in scenarios)
        assert probabilities == [0.125, 0.125, 0.375, 0.375]

    def test_worst_case_graph_contains_everything(self):
        union = build_branchy_ctg().worst_case_graph()
        assert union.num_tasks == 6
        assert union.has_edge("branch", "heavy")
        assert union.has_edge("branch", "light")


class TestConditionalScheduling:
    @pytest.fixture
    def setup(self):
        ctg = build_branchy_ctg()
        return ctg, default_platform(), library_for(ctg)

    def test_aggregation(self, setup):
        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        result = schedule_conditional(
            ctg, platform, library, TaskEnergyPolicy(), floorplan=plan
        )
        assert len(result.results) == 2
        assert result.meets_deadline
        makespans = [r.schedule.makespan for r in result.results]
        assert result.worst_makespan == pytest.approx(max(makespans))

    def test_expected_metrics_are_weighted(self, setup):
        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        result = schedule_conditional(
            ctg, platform, library, TaskEnergyPolicy(), floorplan=plan
        )
        expected = sum(
            r.scenario.probability * r.evaluation.total_power
            for r in result.results
        )
        assert result.expected_total_power == pytest.approx(expected)

    def test_heavy_branch_is_worst_case(self, setup):
        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        result = schedule_conditional(
            ctg, platform, library, TaskEnergyPolicy(), floorplan=plan
        )
        assert result.worst_scenario == "m=hi"  # weight-2 branch dominates

    def test_thermal_policy_works_per_scenario(self, setup):
        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        result = schedule_conditional(
            ctg, platform, library, ThermalPolicy(), floorplan=plan
        )
        for scenario_result in result.results:
            scenario_result.schedule.validate(library)

    def test_model_source_exclusive(self, setup):
        ctg, platform, library = setup
        with pytest.raises(SchedulingError):
            schedule_conditional(ctg, platform, library, TaskEnergyPolicy())

    def test_union_bound_at_least_worst_scenario(self, setup):
        """The classic all-branches bound dominates every scenario."""
        from repro.core.scheduler import schedule_graph

        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        conditional = schedule_conditional(
            ctg, platform, library, TaskEnergyPolicy(), floorplan=plan
        )
        union = schedule_graph(
            ctg.worst_case_graph(), platform, library, TaskEnergyPolicy()
        )
        assert union.makespan >= conditional.worst_makespan - 1e-9

    def test_as_row(self, setup):
        ctg, platform, library = setup
        plan = platform_floorplan(platform)
        result = schedule_conditional(
            ctg, platform, library, TaskEnergyPolicy(), floorplan=plan
        )
        row = result.as_row()
        assert row["scenarios"] == 2
        assert row["meets_deadline"] is True
