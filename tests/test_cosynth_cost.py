"""Tests for co-synthesis cost functions."""

import pytest

from repro.analysis.metrics import ScheduleEvaluation
from repro.cosynth.cost import (
    FinalCost,
    ScreeningCost,
    performance_final_cost,
    performance_screening_cost,
    power_final_cost,
    screening_cost,
    thermal_final_cost,
)


def make_eval(max_temp=100.0, avg_temp=90.0, power=20.0, makespan=500.0,
              deadline=800.0):
    return ScheduleEvaluation(
        benchmark="bm",
        architecture="arch",
        policy="p",
        total_power=power,
        max_temperature=max_temp,
        avg_temperature=avg_temp,
        makespan=makespan,
        deadline=deadline,
        load_balance=1.0,
        pe_temperatures={},
        pe_powers={},
    )


class TestFinalCost:
    def test_thermal_cost_sums_temperatures(self):
        cost = thermal_final_cost()(make_eval(max_temp=100.0, avg_temp=90.0))
        assert cost == pytest.approx(190.0)

    def test_power_cost_uses_power_only(self):
        cost = power_final_cost()(make_eval(power=20.0))
        assert cost == pytest.approx(20.0)

    def test_performance_cost_zero_when_feasible(self):
        assert performance_final_cost()(make_eval()) == 0.0

    def test_deadline_miss_dominates(self):
        feasible = thermal_final_cost()(make_eval())
        missed = thermal_final_cost()(make_eval(makespan=900.0, deadline=800.0))
        assert missed > feasible + 1e5

    def test_weight_mixing(self):
        cost = FinalCost(max_temp_weight=2.0, avg_temp_weight=0.0, power_weight=1.0)
        assert cost(make_eval()) == pytest.approx(2.0 * 100.0 + 20.0)


class TestScreeningCost:
    def test_feasible_cheaper_than_infeasible(self, bm1, bm1_library):
        from repro.core.scheduler import schedule_graph
        from repro.library.presets import default_platform

        platform = default_platform()
        schedule = schedule_graph(bm1, platform, bm1_library)
        assert schedule.meets_deadline
        feasible_cost = screening_cost()(schedule)

        tight = bm1.with_deadline(schedule.makespan / 2.0)
        tight_schedule = schedule_graph(tight, platform, bm1_library)
        assert not tight_schedule.meets_deadline
        assert screening_cost()(tight_schedule) > feasible_cost + 1e5

    def test_energy_ranks_feasible_allocations(self, bm1, bm1_library):
        from repro.core.scheduler import schedule_graph
        from repro.library.presets import default_platform

        schedule = schedule_graph(bm1, default_platform(), bm1_library)
        base = ScreeningCost(energy_weight=1.0, monetary_weight=0.0)(schedule)
        assert base == pytest.approx(schedule.total_energy)

    def test_performance_screening_ignores_energy(self, bm1, bm1_library):
        from repro.core.scheduler import schedule_graph
        from repro.library.presets import default_platform

        platform = default_platform()
        schedule = schedule_graph(bm1, platform, bm1_library)
        cost = performance_screening_cost()(schedule)
        assert cost == pytest.approx(0.1 * 0.0 + 1.0 * platform.total_cost)
