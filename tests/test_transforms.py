"""Tests for task-graph transformations."""

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.benchmarks import benchmark
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.transforms import (
    collapse_linear_chains,
    merge_graphs,
    scale_deadline,
    scale_weights,
)


class TestScaleDeadline:
    def test_scales(self, diamond_graph):
        assert scale_deadline(diamond_graph, 0.5).deadline == pytest.approx(200.0)
        assert diamond_graph.deadline == 400.0  # original untouched

    def test_bad_factor(self, diamond_graph):
        with pytest.raises(TaskGraphError):
            scale_deadline(diamond_graph, 0.0)


class TestScaleWeights:
    def test_weights_scaled_structure_preserved(self, diamond_graph):
        scaled = scale_weights(diamond_graph, 2.0)
        assert all(t.weight == pytest.approx(2.0) for t in scaled)
        assert [e.key for e in scaled.edges()] == [
            e.key for e in diamond_graph.edges()
        ]
        assert scaled.deadline == diamond_graph.deadline

    def test_scales_wcets_through_library(self, diamond_graph, diamond_library):
        scaled = scale_weights(diamond_graph, 3.0)
        original_task = diamond_graph.task("a")
        scaled_task = scaled.task("a")
        pe_type = diamond_library.supported_pe_types(original_task)[0]
        assert diamond_library.wcet(scaled_task, pe_type) == pytest.approx(
            3.0 * diamond_library.wcet(original_task, pe_type)
        )

    def test_bad_factor(self, diamond_graph):
        with pytest.raises(TaskGraphError):
            scale_weights(diamond_graph, -1.0)


class TestMergeGraphs:
    def test_merge_two_benchmarks(self):
        a, b = benchmark("Bm1"), benchmark("Bm2")
        merged = merge_graphs([a, b])
        assert merged.num_tasks == a.num_tasks + b.num_tasks
        assert merged.num_edges == a.num_edges + b.num_edges
        assert merged.deadline == max(a.deadline, b.deadline)

    def test_names_prefixed(self, diamond_graph, chain_graph):
        merged = merge_graphs([diamond_graph, chain_graph])
        assert "diamond.a" in merged
        assert "chain.t0" in merged

    def test_components_stay_independent(self, diamond_graph, chain_graph):
        merged = merge_graphs([diamond_graph, chain_graph])
        assert merged.ancestors("chain.t4") == {
            f"chain.t{i}" for i in range(4)
        }

    def test_explicit_deadline(self, diamond_graph, chain_graph):
        merged = merge_graphs([diamond_graph, chain_graph], deadline=123.0)
        assert merged.deadline == 123.0

    def test_empty_rejected(self):
        with pytest.raises(TaskGraphError):
            merge_graphs([])


class TestCollapseChains:
    def test_pure_chain_collapses_to_one(self, chain_graph):
        collapsed = collapse_linear_chains(chain_graph)
        assert collapsed.num_tasks == 1
        assert collapsed.num_edges == 0
        only = collapsed.tasks()[0]
        assert only.name == "t0"
        assert only.weight == pytest.approx(5.0)  # five unit weights fused

    def test_diamond_untouched(self, diamond_graph):
        collapsed = collapse_linear_chains(diamond_graph)
        assert collapsed.num_tasks == 4
        assert collapsed.num_edges == 4

    def test_mixed_graph(self):
        # src -> c1 -> c2 -> join ; src -> join  : c1-c2 is a chain but c1
        # has in-degree 1 from a fan-out node, so only c2 folds into c1
        graph = TaskGraph("m", 100.0)
        for name in ("src", "c1", "c2", "join"):
            graph.add(name, "t")
        graph.add_edge("src", "c1")
        graph.add_edge("c1", "c2")
        graph.add_edge("c2", "join")
        graph.add_edge("src", "join")
        collapsed = collapse_linear_chains(graph)
        assert collapsed.num_tasks == 3
        assert "c1" in collapsed and "c2" not in collapsed
        assert collapsed.task("c1").weight == pytest.approx(2.0)
        assert collapsed.has_edge("c1", "join")

    def test_collapse_preserves_reachability(self):
        graph = benchmark("Bm2")
        collapsed = collapse_linear_chains(graph)
        collapsed.validate()
        assert collapsed.num_tasks <= graph.num_tasks
        # total weight is conserved
        assert sum(t.weight for t in collapsed) == pytest.approx(
            sum(t.weight for t in graph)
        )

    def test_idempotent(self):
        graph = benchmark("Bm3")
        once = collapse_linear_chains(graph)
        twice = collapse_linear_chains(once)
        assert twice.num_tasks == once.num_tasks
