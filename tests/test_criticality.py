"""Tests for static criticality."""

import pytest

from repro.core.criticality import static_criticality
from repro.library.technology import TechnologyLibrary
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def lib():
    library = TechnologyLibrary()
    # type0 mean WCET = 10, type1 mean = 20
    library.add_entry("type0", "peA", 8.0, 1.0)
    library.add_entry("type0", "peB", 12.0, 1.0)
    library.add_entry("type1", "peA", 20.0, 1.0)
    return library


def test_chain_accumulates(lib):
    graph = TaskGraph("g", 100.0)
    graph.add("a", "type0")
    graph.add("b", "type0")
    graph.add("c", "type0")
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    sc = static_criticality(graph, lib)
    assert sc == {"a": 30.0, "b": 20.0, "c": 10.0}


def test_branch_takes_maximum(lib):
    graph = TaskGraph("g", 100.0)
    graph.add("a", "type0")
    graph.add("slow", "type1")   # mean 20
    graph.add("fast", "type0")   # mean 10
    graph.add_edge("a", "slow")
    graph.add_edge("a", "fast")
    sc = static_criticality(graph, lib)
    assert sc["a"] == pytest.approx(10.0 + 20.0)  # via the slow branch


def test_sink_equals_own_cost(lib):
    graph = TaskGraph("g", 100.0)
    graph.add("only", "type1")
    sc = static_criticality(graph, lib)
    assert sc["only"] == pytest.approx(20.0)


def test_custom_node_cost(lib, diamond_graph):
    sc = static_criticality(diamond_graph, lib, node_cost=lambda t: 1.0)
    assert sc["a"] == pytest.approx(3.0)


def test_sources_carry_critical_path(lib, chain_graph):
    sc = static_criticality(chain_graph, lib)
    assert max(sc.values()) == sc["t0"]


def test_sc_monotone_along_edges(bm1, bm1_library):
    sc = static_criticality(bm1, bm1_library)
    for edge in bm1.edges():
        assert sc[edge.src] > sc[edge.dst]
