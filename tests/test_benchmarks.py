"""Tests for the paper benchmark suite Bm1-Bm4."""

import pytest

from repro.errors import ExperimentError
from repro.taskgraph.benchmarks import (
    BENCHMARK_NAMES,
    BENCHMARK_SPECS,
    benchmark,
    benchmark_suite,
)

#: (name, tasks, edges, deadline) straight from Table 1 of the paper.
PAPER_SHAPES = [
    ("Bm1", 19, 19, 790.0),
    ("Bm2", 35, 40, 1500.0),
    ("Bm3", 39, 43, 1650.0),
    ("Bm4", 51, 60, 2000.0),
]


@pytest.mark.parametrize("name,tasks,edges,deadline", PAPER_SHAPES)
def test_benchmark_matches_paper_shape(name, tasks, edges, deadline):
    graph = benchmark(name)
    assert graph.name == name
    assert graph.num_tasks == tasks
    assert graph.num_edges == edges
    assert graph.deadline == deadline


def test_names_in_paper_order():
    assert BENCHMARK_NAMES == ["Bm1", "Bm2", "Bm3", "Bm4"]


def test_specs_cover_all_names():
    assert set(BENCHMARK_SPECS) == set(BENCHMARK_NAMES)


def test_benchmarks_are_valid_dags():
    for graph in benchmark_suite():
        graph.validate()


def test_benchmark_reproducible_across_calls():
    a, b = benchmark("Bm2"), benchmark("Bm2")
    assert a is not b  # fresh object each call
    assert [(t.name, t.task_type) for t in a] == [(t.name, t.task_type) for t in b]
    assert [e.key for e in a.edges()] == [e.key for e in b.edges()]


def test_benchmarks_are_distinct():
    suites = benchmark_suite()
    edge_sets = [tuple(e.key for e in g.edges()) for g in suites]
    assert len(set(edge_sets)) == len(suites)


def test_unknown_benchmark_raises():
    with pytest.raises(ExperimentError):
        benchmark("Bm9")


def test_suite_order():
    assert [g.name for g in benchmark_suite()] == BENCHMARK_NAMES
