"""Tests for the preset catalogue and library generation."""

import pytest

from repro.errors import LibraryError
from repro.library.presets import (
    PLATFORM_PE,
    default_catalogue,
    default_platform,
    generate_technology_library,
    library_for_graph,
)
from repro.taskgraph.benchmarks import benchmark


class TestCatalogue:
    def test_contains_platform_pe(self):
        names = [t.name for t in default_catalogue()]
        assert PLATFORM_PE.name in names

    def test_five_types(self):
        assert len(default_catalogue()) == 5

    def test_names_unique(self):
        names = [t.name for t in default_catalogue()]
        assert len(set(names)) == len(names)

    def test_returns_fresh_list(self):
        a = default_catalogue()
        a.pop()
        assert len(default_catalogue()) == 5

    def test_speed_power_tradeoff_exists(self):
        # the catalogue must contain both a slower/cooler and a faster/hotter
        # option than the platform core, else co-synthesis is trivial
        catalogue = {t.name: t for t in default_catalogue()}
        assert any(
            t.speed < 1.0 and t.power_scale < 1.0 for t in catalogue.values()
        )
        assert any(
            t.speed > 1.0 and t.power_scale > 1.0 for t in catalogue.values()
        )


class TestDefaultPlatform:
    def test_four_identical_pes(self):
        platform = default_platform()
        assert len(platform) == 4
        assert {pe.type_name for pe in platform} == {PLATFORM_PE.name}

    def test_custom_count(self):
        assert len(default_platform(count=6)) == 6


class TestGenerateLibrary:
    def test_general_purpose_cover_everything(self):
        types = [f"type{i}" for i in range(6)]
        library = generate_technology_library(types, seed=1)
        for task_type in types:
            for gp in ("emb-risc", "lp-risc", "dsp", "vliw"):
                assert library.supports(task_type, gp)

    def test_accelerator_covers_subset(self):
        types = [f"type{i}" for i in range(6)]
        library = generate_technology_library(types, seed=1)
        covered = [t for t in types if library.supports(t, "accel")]
        assert covered == ["type0", "type3"]

    def test_deterministic(self):
        types = ["a", "b", "c"]
        lib1 = generate_technology_library(types, seed=5)
        lib2 = generate_technology_library(types, seed=5)
        assert lib1.entries() == lib2.entries()

    def test_seed_changes_values(self):
        types = ["a", "b"]
        lib1 = generate_technology_library(types, seed=1)
        lib2 = generate_technology_library(types, seed=2)
        assert lib1.entries() != lib2.entries()

    def test_speed_scaling_direction(self):
        # statistically, faster PEs must have smaller WCETs: compare the
        # slowest and fastest catalogue entries across many task types
        types = [f"t{i}" for i in range(20)]
        library = generate_technology_library(types, seed=3)
        slow = sum(library.wcet(t, "lp-risc") for t in types)
        fast = sum(library.wcet(t, "vliw") for t in types)
        assert fast < slow

    def test_power_scaling_direction(self):
        types = [f"t{i}" for i in range(20)]
        library = generate_technology_library(types, seed=3)
        cool = sum(library.power(t, "lp-risc") for t in types)
        hot = sum(library.power(t, "vliw") for t in types)
        assert cool < hot

    def test_empty_types_rejected(self):
        with pytest.raises(LibraryError):
            generate_technology_library([], seed=1)

    def test_duplicate_types_rejected(self):
        with pytest.raises(LibraryError):
            generate_technology_library(["a", "a"], seed=1)

    def test_empty_catalogue_rejected(self):
        with pytest.raises(LibraryError):
            generate_technology_library(["a"], catalogue=[], seed=1)


class TestLibraryForGraph:
    def test_covers_graph_types(self):
        graph = benchmark("Bm1")
        library = library_for_graph(graph)
        graph_types = {t.task_type for t in graph}
        assert graph_types <= set(library.task_types())

    def test_deterministic_per_benchmark(self):
        graph = benchmark("Bm2")
        assert library_for_graph(graph).entries() == library_for_graph(graph).entries()

    def test_distinct_across_benchmarks(self):
        lib1 = library_for_graph(benchmark("Bm1"))
        lib2 = library_for_graph(benchmark("Bm2"))
        assert lib1.entries() != lib2.entries()

    def test_platform_always_feasible(self):
        # every benchmark task must run on the platform PE type
        from repro.library.presets import default_platform

        for name in ("Bm1", "Bm2", "Bm3", "Bm4"):
            graph = benchmark(name)
            library = library_for_graph(graph)
            library.check_graph(graph, default_platform())
